//! Static resource estimation: bounds on qubit count, gate count, circuit
//! depth, and measurement count — computed **without simulating**.
//!
//! The estimator is an abstract interpreter that mirrors the runtime's
//! circuit lowering (`qutes-core::runtime`) onto a *shadow circuit*: it
//! tracks classical values symbolically (known constant or unknown) and
//! replays the exact gate sequences the interpreter would emit — calling
//! the same `qutes-algos` builders for arithmetic, rotations, and state
//! preparation — but never allocates a statevector and never samples.
//!
//! On programs whose control flow does not depend on measurement outcomes
//! the resulting counts are **exact** (they match `qcirc`'s
//! [`CircuitStats`](qutes_qcirc::CircuitStats) for the circuit a real run
//! accumulates). Measurement-dependent branches are explored on both
//! sides: when the two worlds build identical circuits the estimate stays
//! exact, otherwise the larger world is kept and the difference becomes
//! additive slack, making every figure an upper bound. Constructs whose
//! circuit size is inherently run-dependent (the Grover-based `in`
//! operator's BBHT schedule, unbounded `while` loops) mark the estimate
//! inexact and leave a note.

use qutes_algos::{arithmetic, rotation, state_prep};
use qutes_core::casting::bits_for;
use qutes_core::value::QKind;
use qutes_frontend::ast::*;
use qutes_frontend::KetState;
use qutes_qcirc::{Gate, QuantumCircuit};
use std::collections::HashMap;

/// Static bounds on the circuit a program would build.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceEstimate {
    /// Total qubits allocated (shadow width plus branch slack).
    pub qubits: usize,
    /// Instructions excluding barriers (matches [`size`] semantics).
    ///
    /// [`size`]: qutes_qcirc::QuantumCircuit::size
    pub gates: usize,
    /// Circuit depth (matches [`depth`] semantics; an upper bound when
    /// the estimate is not exact).
    ///
    /// [`depth`]: qutes_qcirc::QuantumCircuit::depth
    pub depth: usize,
    /// Collapsing measurement operations.
    pub measurements: usize,
    /// True when every figure is exact for any run of the program.
    pub exact: bool,
    /// True when every gate the program can emit (on any branch the
    /// estimator explored) is Clifford — H/X/Y/Z/S/S†/CX/CY/CZ/Swap,
    /// measurement, reset. Such programs are exactly simulable on the
    /// stabilizer-tableau backend at hundreds of qubits; the `qutes`
    /// facade uses this bit to auto-dispatch (see `docs/backends.md`).
    /// When estimation gives up early the bit survives only if the
    /// syntactic Clifford classifier
    /// ([`crate::domains::syntactic::program_is_clifford`]) proves no
    /// construct in the program can lower to a non-Clifford gate, so a
    /// `true` here is a sound promise, never a guess.
    pub clifford_only: bool,
    /// Why the estimate is inexact (empty when `exact`).
    pub notes: Vec<String>,
}

impl Default for ResourceEstimate {
    fn default() -> Self {
        ResourceEstimate {
            qubits: 0,
            gates: 0,
            depth: 0,
            measurements: 0,
            exact: true,
            clifford_only: true,
            notes: Vec::new(),
        }
    }
}

impl ResourceEstimate {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "resources: {} qubit{}, {} gate{}, depth {}, {} measurement{} ({})",
            self.qubits,
            plural(self.qubits),
            self.gates,
            plural(self.gates),
            self.depth,
            self.measurements,
            plural(self.measurements),
            match (self.exact, self.clifford_only) {
                (true, true) => "exact, clifford-only",
                (true, false) => "exact",
                (false, true) => "upper bound, clifford-only",
                (false, false) => "upper bound",
            },
        )
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Estimates the resources `program` would consume when run.
pub fn estimate(program: &Program) -> ResourceEstimate {
    let mut est = Est::new(program);
    let mut gave_up = false;
    for item in &program.items {
        if let Item::Statement(s) = item {
            match est.exec_stmt(s) {
                Ok(Flow::Normal) => {}
                Ok(Flow::Return(_)) => break,
                Err(Stop) => {
                    gave_up = true;
                    break;
                }
            }
        }
    }
    if gave_up {
        est.inexact("estimation stopped early (budget exhausted or un-analyzable construct)");
        // Unknown gates may follow the stop point, so the trace-based
        // Clifford bit alone would be unsound. The syntactic classifier
        // rescues the common case: if *no construct in the whole
        // program* can lower to a non-Clifford gate, the claim stands
        // regardless of where estimation stopped (e.g. measurement-
        // terminated branches or unbounded while loops in an otherwise
        // Clifford program).
        est.clifford_only =
            est.clifford_only && crate::domains::syntactic::program_is_clifford(program);
    }
    est.finish()
}

/// Abstract value: a classical constant, an unknown of known type, or a
/// quantum register (identified by its shadow-circuit qubit indices).
#[derive(Clone, Debug, PartialEq)]
enum AVal {
    Bool(Option<bool>),
    Int(Option<i64>),
    Float(Option<f64>),
    Str(Option<String>),
    Array(Vec<AVal>),
    Quantum(Vec<usize>, QKind),
    Void,
    Unknown,
}

impl AVal {
    /// Mirrors `Value::as_bool` (unknown payload → unknown truth).
    fn as_bool(&self) -> Option<bool> {
        match self {
            AVal::Bool(b) => *b,
            AVal::Int(i) => i.map(|i| i != 0),
            AVal::Float(f) => f.map(|f| f != 0.0),
            AVal::Str(s) => s.as_ref().map(|s| !s.is_empty()),
            _ => None,
        }
    }

    /// Mirrors `Value::as_i64`.
    fn as_i64(&self) -> Option<i64> {
        match self {
            AVal::Int(i) => *i,
            AVal::Bool(b) => b.map(|b| b as i64),
            AVal::Float(f) => f.filter(|f| f.fract() == 0.0).map(|f| f as i64),
            _ => None,
        }
    }

    /// Mirrors `Value::as_f64`.
    fn as_f64(&self) -> Option<f64> {
        match self {
            AVal::Int(i) => i.map(|i| i as f64),
            AVal::Float(f) => *f,
            AVal::Bool(b) => b.map(|b| b as i64 as f64),
            _ => None,
        }
    }

    /// True when this is a quantum register (of any kind).
    fn is_quantum(&self) -> bool {
        matches!(self, AVal::Quantum(_, _))
    }
}

/// One environment slot: declared type plus abstract value.
#[derive(Clone, Debug, PartialEq)]
struct Slot {
    ty: Type,
    val: AVal,
}

enum Flow {
    Normal,
    Return(AVal),
}

/// Estimation cannot continue (budget exhausted, or the program would
/// error at runtime anyway). The caller marks the estimate inexact.
struct Stop;

type R<T> = Result<T, Stop>;

const MAX_SHADOW_QUBITS: usize = 1024;
const MAX_STEPS: u64 = 200_000;
const MAX_CALL_DEPTH: usize = 64;

#[derive(Clone)]
struct Est<'p> {
    scopes: Vec<HashMap<String, Slot>>,
    functions: HashMap<String, &'p FunctionDecl>,
    circ: QuantumCircuit,
    free: Vec<usize>,
    measurements: usize,
    exact: bool,
    clifford_only: bool,
    notes: Vec<String>,
    slack_gates: usize,
    slack_depth: usize,
    slack_qubits: usize,
    slack_meas: usize,
    steps: u64,
    call_depth: usize,
}

impl<'p> Est<'p> {
    fn new(program: &'p Program) -> Self {
        let functions = program
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Function(f) => Some((f.name.clone(), f)),
                _ => None,
            })
            .collect();
        Est {
            scopes: vec![HashMap::new()],
            functions,
            circ: QuantumCircuit::new(),
            free: Vec::new(),
            measurements: 0,
            exact: true,
            clifford_only: true,
            notes: Vec::new(),
            slack_gates: 0,
            slack_depth: 0,
            slack_qubits: 0,
            slack_meas: 0,
            steps: 0,
            call_depth: 0,
        }
    }

    fn finish(mut self) -> ResourceEstimate {
        self.notes.dedup();
        let mut seen = Vec::new();
        for n in self.notes {
            if !seen.contains(&n) {
                seen.push(n);
            }
        }
        ResourceEstimate {
            qubits: self.circ.num_qubits() + self.slack_qubits,
            gates: self.circ.size() + self.slack_gates,
            depth: self.circ.depth() + self.slack_depth,
            measurements: self.measurements + self.slack_meas,
            exact: self.exact,
            clifford_only: self.clifford_only,
            notes: seen,
        }
    }

    fn inexact(&mut self, note: &str) {
        self.exact = false;
        let note = note.to_string();
        if !self.notes.contains(&note) {
            self.notes.push(note);
        }
    }

    fn step(&mut self) -> R<()> {
        self.steps += 1;
        if self.steps > MAX_STEPS {
            return Err(Stop);
        }
        Ok(())
    }

    // ---- shadow handler (mirrors QuantumCircuitHandler) -----------------

    fn allocate(&mut self, width: usize) -> R<Vec<usize>> {
        if self.circ.num_qubits() + width > MAX_SHADOW_QUBITS {
            return Err(Stop);
        }
        Ok(self.circ.add_qreg("r", width).qubits())
    }

    fn acquire(&mut self, n: usize) -> R<Vec<usize>> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.free.pop() {
                Some(q) => out.push(q),
                None => break,
            }
        }
        let missing = n - out.len();
        if missing > 0 {
            let fresh = self.allocate(missing)?;
            out.extend(fresh);
        }
        Ok(out)
    }

    /// All mirrored release sites uncompute their ancillas back to `|0>`
    /// deterministically, so (unlike the runtime's state-probing pool)
    /// the shadow always re-pools.
    fn release(&mut self, qubits: &[usize]) {
        self.free.extend_from_slice(qubits);
    }

    fn apply(&mut self, gate: Gate) -> R<()> {
        if !gate.is_clifford() {
            self.clifford_only = false;
        }
        self.circ.append(gate).map_err(|_| Stop)
    }

    fn apply_fragment(&mut self, frag: &QuantumCircuit) -> R<()> {
        for g in frag.ops() {
            self.apply(g.clone())?;
        }
        Ok(())
    }

    fn fragment(&self) -> QuantumCircuit {
        QuantumCircuit::with_qubits(self.circ.num_qubits())
    }

    fn shadow_measure(&mut self, qubits: &[usize]) -> R<()> {
        let creg = self
            .circ
            .add_creg(format!("m{}", self.measurements), qubits.len());
        self.measurements += 1;
        for (k, &q) in qubits.iter().enumerate() {
            self.apply(Gate::Measure {
                qubit: q,
                clbit: creg.bit(k),
            })?;
        }
        Ok(())
    }

    /// Measures a quantum value into an unknown classical one (the
    /// collapse is mirrored; the outcome is not predictable).
    fn measure_if_quantum(&mut self, v: AVal) -> R<AVal> {
        match v {
            AVal::Quantum(qubits, kind) => {
                self.shadow_measure(&qubits)?;
                Ok(match kind {
                    QKind::Qubit => AVal::Bool(None),
                    QKind::Quint => AVal::Int(None),
                    QKind::Qustring => AVal::Str(None),
                })
            }
            v => Ok(v),
        }
    }

    // ---- environment ------------------------------------------------------

    fn declare(&mut self, name: &str, ty: Type, val: AVal) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), Slot { ty, val });
        }
    }

    fn lookup(&self, name: &str) -> Option<&Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn lookup_mut(&mut self, name: &str) -> Option<&mut Slot> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }

    fn havoc(&mut self, name: &str) {
        if let Some(slot) = self.lookup_mut(name) {
            slot.val = AVal::Unknown;
        }
    }

    // ---- statements -------------------------------------------------------

    fn exec_block(&mut self, b: &Block) -> R<Flow> {
        self.scopes.push(HashMap::new());
        let r = self.exec_stmts(&b.stmts);
        self.scopes.pop();
        r
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> R<Flow> {
        for s in stmts {
            if let Flow::Return(v) = self.exec_stmt(s)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> R<Flow> {
        self.step()?;
        match s {
            Stmt::VarDecl { ty, name, init, .. } => {
                let val = match init {
                    Some(e) => {
                        let v = self.eval_with_target(e, Some(ty))?;
                        self.coerce(v, ty)?
                    }
                    None => self.default_value(ty)?,
                };
                self.declare(name, ty.clone(), val);
                Ok(Flow::Normal)
            }
            Stmt::Assign {
                target, op, value, ..
            } => {
                self.exec_assign(target, *op, value)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => match self.eval_condition(cond)? {
                Some(true) => self.exec_block(then_block),
                Some(false) => match else_block {
                    Some(eb) => self.exec_block(eb),
                    None => Ok(Flow::Normal),
                },
                None => {
                    let then_block = then_block.clone();
                    let else_block = else_block.clone();
                    self.explore(
                        move |e| e.exec_block(&then_block),
                        move |e| match &else_block {
                            Some(eb) => e.exec_block(eb),
                            None => Ok(Flow::Normal),
                        },
                    )
                }
            },
            Stmt::While { cond, body, .. } => {
                loop {
                    match self.eval_condition(cond)? {
                        Some(false) => break,
                        Some(true) => {
                            self.step()?;
                            if let Flow::Return(v) = self.exec_block(body)? {
                                return Ok(Flow::Return(v));
                            }
                        }
                        None => {
                            // The trip count is not statically known: walk
                            // the body once (for declarations/uses), then
                            // forget everything it might have changed.
                            self.inexact(
                                "while loop with a run-dependent condition: iteration count \
                                 (and any gates its body emits) cannot be bounded statically",
                            );
                            let flow = self.exec_block(body)?;
                            for name in assigned_names(&body.stmts) {
                                self.havoc(&name);
                            }
                            if let Flow::Return(v) = flow {
                                return Ok(Flow::Return(v));
                            }
                            break;
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Foreach {
                var,
                iterable,
                body,
                ..
            } => {
                let it = self.eval(iterable)?;
                let items: Vec<(Type, AVal)> = match it {
                    AVal::Array(items) => {
                        items.into_iter().map(|v| (abstract_type(&v), v)).collect()
                    }
                    AVal::Quantum(qubits, QKind::Qustring) => qubits
                        .iter()
                        .map(|&qb| (Type::Qubit, AVal::Quantum(vec![qb], QKind::Qubit)))
                        .collect(),
                    AVal::Quantum(_, _) => return Err(Stop),
                    _ => {
                        self.inexact(
                            "foreach over a run-dependent collection: iteration count cannot \
                             be bounded statically",
                        );
                        self.scopes.push(HashMap::new());
                        self.declare(var, Type::Int, AVal::Unknown);
                        let flow = self.exec_stmts(&body.stmts);
                        self.scopes.pop();
                        for name in assigned_names(&body.stmts) {
                            self.havoc(&name);
                        }
                        if let Flow::Return(v) = flow? {
                            return Ok(Flow::Return(v));
                        }
                        return Ok(Flow::Normal);
                    }
                };
                // The runtime binds the loop variable by reference; the
                // shadow env is by value, so writes through the loop
                // variable invalidate the (possibly aliased) iterable.
                let body_writes_var = assigned_names(&body.stmts).contains(var);
                for (ty, item) in items {
                    self.step()?;
                    self.scopes.push(HashMap::new());
                    self.declare(var, ty, item);
                    let flow = self.exec_stmts(&body.stmts);
                    self.scopes.pop();
                    if let Flow::Return(v) = flow? {
                        return Ok(Flow::Return(v));
                    }
                }
                if body_writes_var {
                    if let ExprKind::Var(n) = &iterable.kind {
                        let n = n.clone();
                        self.havoc(&n);
                    }
                    self.inexact("foreach body writes its loop variable (bound by reference)");
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => self.eval(e)?,
                    None => AVal::Void,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Print { value, .. } => {
                let v = self.eval(value)?;
                self.measure_if_quantum(v)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr { expr, .. } => {
                self.eval(expr)?;
                Ok(Flow::Normal)
            }
            Stmt::Gate { gate, args, .. } => {
                self.exec_gate(*gate, args)?;
                Ok(Flow::Normal)
            }
            Stmt::Measure { target, .. } => {
                let v = self.eval(target)?;
                match v {
                    AVal::Quantum(qubits, _) => self.shadow_measure(&qubits)?,
                    AVal::Unknown => {
                        self.inexact("measure of a value the estimator lost track of");
                        self.slack_meas += 1;
                    }
                    _ => return Err(Stop),
                }
                Ok(Flow::Normal)
            }
            Stmt::Barrier { .. } => {
                self.apply(Gate::Barrier(vec![]))?;
                Ok(Flow::Normal)
            }
            Stmt::Block(b) => self.exec_block(b),
        }
    }

    fn default_value(&mut self, ty: &Type) -> R<AVal> {
        Ok(match ty {
            Type::Bool => AVal::Bool(Some(false)),
            Type::Int => AVal::Int(Some(0)),
            Type::Float => AVal::Float(Some(0.0)),
            Type::String => AVal::Str(Some(String::new())),
            Type::Qubit => AVal::Quantum(self.allocate(1)?, QKind::Qubit),
            Type::Quint => AVal::Quantum(self.allocate(1)?, QKind::Quint),
            Type::Qustring => return Err(Stop),
            Type::Array(_) => AVal::Array(Vec::new()),
            Type::Void => AVal::Void,
        })
    }

    /// Mirrors `Interp::coerce`: identity, widening, promotion (which
    /// allocates and encodes), width-1 reinterpretation, auto-measure.
    fn coerce(&mut self, v: AVal, ty: &Type) -> R<AVal> {
        let ok = match (ty, &v) {
            (Type::Bool, AVal::Bool(_))
            | (Type::Int, AVal::Int(_))
            | (Type::Float, AVal::Float(_))
            | (Type::String, AVal::Str(_))
            | (Type::Array(_), AVal::Array(_)) => true,
            (Type::Qubit, AVal::Quantum(_, k)) => *k == QKind::Qubit,
            (Type::Quint, AVal::Quantum(_, k)) => *k == QKind::Quint,
            (Type::Qustring, AVal::Quantum(_, k)) => *k == QKind::Qustring,
            _ => false,
        };
        if ok {
            return Ok(v);
        }
        match (ty, v) {
            (_, AVal::Unknown) => {
                if ty.is_quantum() {
                    self.inexact("value promoted to a quantum register of run-dependent width");
                    self.slack_qubits += 1;
                }
                Ok(AVal::Unknown)
            }
            (Type::Float, AVal::Int(i)) => Ok(AVal::Float(i.map(|i| i as f64))),
            (Type::Qubit, AVal::Bool(b)) => {
                let qubits = self.allocate(1)?;
                match b {
                    Some(true) => self.apply(Gate::X(qubits[0]))?,
                    Some(false) => {}
                    None => {
                        // The X gate is present only when the value is 1.
                        self.inexact("qubit prepared from a run-dependent classical bit");
                        self.slack_gates += 1;
                        self.slack_depth += 1;
                    }
                }
                Ok(AVal::Quantum(qubits, QKind::Qubit))
            }
            (Type::Qubit, AVal::Int(None)) => {
                let qubits = self.allocate(1)?;
                self.inexact("qubit prepared from a run-dependent classical bit");
                self.slack_gates += 1;
                self.slack_depth += 1;
                Ok(AVal::Quantum(qubits, QKind::Qubit))
            }
            (Type::Qubit, AVal::Int(Some(i))) if i == 0 || i == 1 => {
                let qubits = self.allocate(1)?;
                if i == 1 {
                    self.apply(Gate::X(qubits[0]))?;
                }
                Ok(AVal::Quantum(qubits, QKind::Qubit))
            }
            (Type::Quint, AVal::Int(Some(i))) if i >= 0 => {
                Ok(AVal::Quantum(self.new_quint(i as u64, None)?, QKind::Quint))
            }
            (Type::Quint, AVal::Bool(Some(b))) => {
                Ok(AVal::Quantum(self.new_quint(b as u64, None)?, QKind::Quint))
            }
            (Type::Quint, AVal::Int(None) | AVal::Bool(None)) => {
                // Width depends on the value: assume the 1-qubit minimum
                // and flag the loss of exactness.
                self.inexact("quint promoted from a run-dependent integer: width unknown");
                Ok(AVal::Quantum(self.allocate(1)?, QKind::Quint))
            }
            (Type::Qubit, AVal::Quantum(qubits, _)) if qubits.len() == 1 => {
                Ok(AVal::Quantum(qubits, QKind::Qubit))
            }
            (Type::Quint, AVal::Quantum(qubits, _)) => Ok(AVal::Quantum(qubits, QKind::Quint)),
            (Type::Qustring, AVal::Str(Some(s))) => {
                Ok(AVal::Quantum(self.new_qustring(&s)?, QKind::Qustring))
            }
            (Type::Qustring, AVal::Str(None)) => {
                self.inexact("qustring promoted from a run-dependent string: width unknown");
                Ok(AVal::Quantum(self.allocate(1)?, QKind::Qustring))
            }
            (Type::Qustring, AVal::Quantum(qubits, _)) => {
                Ok(AVal::Quantum(qubits, QKind::Qustring))
            }
            (classical, q @ AVal::Quantum(_, _)) if classical.is_classical() => {
                let m = self.measure_if_quantum(q)?;
                match (classical, m) {
                    (Type::Bool, m @ AVal::Bool(_))
                    | (Type::Int, m @ AVal::Int(_))
                    | (Type::String, m @ AVal::Str(_)) => Ok(m),
                    (Type::Float, AVal::Int(i)) => Ok(AVal::Float(i.map(|i| i as f64))),
                    _ => Err(Stop),
                }
            }
            _ => Err(Stop),
        }
    }

    fn exec_assign(&mut self, target: &LValue, op: AssignOp, value_expr: &Expr) -> R<()> {
        // Resolve the target slot's type; element targets with unknown
        // indices can only be havocked.
        enum Tgt {
            Var(String),
            Elem(String, usize),
            Lost(String),
        }
        let (tgt, target_ty, current) = match target {
            LValue::Name(name) => {
                let Some(slot) = self.lookup(name) else {
                    return Err(Stop);
                };
                (Tgt::Var(name.clone()), slot.ty.clone(), slot.val.clone())
            }
            LValue::Index(name, idx_expr) => {
                let idx = self.eval_index(idx_expr)?;
                let Some(slot) = self.lookup(name) else {
                    return Err(Stop);
                };
                let elem_ty = match &slot.ty {
                    Type::Array(t) => (**t).clone(),
                    _ => return Err(Stop),
                };
                match (idx, &slot.val) {
                    (Some(i), AVal::Array(items)) => match items.get(i) {
                        Some(v) => (Tgt::Elem(name.clone(), i), elem_ty, v.clone()),
                        None => return Err(Stop),
                    },
                    _ => {
                        self.inexact("assignment through a run-dependent array index");
                        (Tgt::Lost(name.clone()), elem_ty, AVal::Unknown)
                    }
                }
            }
        };

        let result: Option<AVal> = match op {
            AssignOp::Set => {
                let v = self.eval_with_target(value_expr, Some(&target_ty))?;
                Some(self.coerce(v, &target_ty)?)
            }
            AssignOp::Add | AssignOp::Sub => match current {
                AVal::Quantum(qubits, QKind::Quint) => {
                    let rhs = self.eval(value_expr)?;
                    self.quint_add_sub_in_place(&qubits, rhs, op == AssignOp::Sub)?;
                    None
                }
                classical => {
                    let rhs = self.eval(value_expr)?;
                    let bin = if op == AssignOp::Add {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    };
                    Some(self.classical_binary(bin, classical, rhs)?)
                }
            },
            AssignOp::Shl | AssignOp::Shr => {
                let rhs = self.eval(value_expr)?;
                let k = rhs.as_i64();
                match (current, k) {
                    (AVal::Quantum(qubits, _), Some(k)) if k >= 0 => {
                        self.rotate_in_place(&qubits, k as usize, op == AssignOp::Shl)?;
                        None
                    }
                    (AVal::Quantum(_, _), _) => {
                        self.inexact(
                            "cyclic shift by a run-dependent amount: rotation network unknown",
                        );
                        None
                    }
                    (AVal::Int(i), Some(k)) if k >= 0 => Some(AVal::Int(i.map(|i| {
                        if op == AssignOp::Shl {
                            i.wrapping_shl(k as u32)
                        } else {
                            i.wrapping_shr(k as u32)
                        }
                    }))),
                    (AVal::Int(_) | AVal::Unknown, _) => Some(AVal::Unknown),
                    _ => return Err(Stop),
                }
            }
        };

        if let Some(v) = result {
            match tgt {
                Tgt::Var(name) => {
                    if let Some(slot) = self.lookup_mut(&name) {
                        slot.val = v;
                    }
                }
                Tgt::Elem(name, i) => {
                    if let Some(slot) = self.lookup_mut(&name) {
                        if let AVal::Array(items) = &mut slot.val {
                            if let Some(e) = items.get_mut(i) {
                                *e = v;
                            }
                        }
                    }
                }
                Tgt::Lost(name) => self.havoc(&name),
            }
        }
        Ok(())
    }

    fn eval_index(&mut self, e: &Expr) -> R<Option<usize>> {
        let v = self.eval(e)?;
        let v = self.measure_if_quantum(v)?;
        Ok(v.as_i64().filter(|&i| i >= 0).map(|i| i as usize))
    }

    fn exec_gate(&mut self, gate: GateKind, args: &[Expr]) -> R<()> {
        let operand = |est: &mut Self, e: &Expr| -> R<Option<Vec<usize>>> {
            match est.eval(e)? {
                AVal::Quantum(qubits, _) => Ok(Some(qubits)),
                AVal::Unknown => Ok(None),
                _ => Err(Stop),
            }
        };
        match gate {
            GateKind::Hadamard | GateKind::NotGate | GateKind::PauliY | GateKind::PauliZ => {
                let Some(e) = args.first() else {
                    return Err(Stop);
                };
                let Some(qubits) = operand(self, e)? else {
                    self.inexact("gate applied to a register the estimator lost track of");
                    return Ok(());
                };
                for qb in qubits {
                    let g = match gate {
                        GateKind::Hadamard => Gate::H(qb),
                        GateKind::NotGate => Gate::X(qb),
                        GateKind::PauliY => Gate::Y(qb),
                        _ => Gate::Z(qb),
                    };
                    self.apply(g)?;
                }
            }
            GateKind::Phase => {
                let (Some(e0), Some(e1)) = (args.first(), args.get(1)) else {
                    return Err(Stop);
                };
                let qubits = operand(self, e0)?;
                let angle = self.eval(e1)?.as_f64().unwrap_or(0.0);
                let Some(qubits) = qubits else {
                    self.inexact("gate applied to a register the estimator lost track of");
                    return Ok(());
                };
                for qb in qubits {
                    self.apply(Gate::Phase {
                        target: qb,
                        lambda: angle,
                    })?;
                }
            }
            GateKind::CNot => {
                let (Some(e0), Some(e1)) = (args.first(), args.get(1)) else {
                    return Err(Stop);
                };
                let c = operand(self, e0)?;
                let t = operand(self, e1)?;
                let (Some(c), Some(t)) = (c, t) else {
                    self.inexact("gate applied to a register the estimator lost track of");
                    return Ok(());
                };
                if c.len() == t.len() {
                    for (&cq, &tq) in c.iter().zip(&t) {
                        self.apply(Gate::CX {
                            control: cq,
                            target: tq,
                        })?;
                    }
                } else if c.len() == 1 {
                    for &tq in &t {
                        self.apply(Gate::CX {
                            control: c[0],
                            target: tq,
                        })?;
                    }
                } else {
                    return Err(Stop);
                }
            }
        }
        Ok(())
    }

    // ---- quantum constructors (mirror TypeCastingHandler) ---------------

    fn new_quint(&mut self, v: u64, width: Option<usize>) -> R<Vec<usize>> {
        let width = width.unwrap_or_else(|| bits_for(v));
        let qubits = self.allocate(width)?;
        for (i, &q) in qubits.iter().enumerate() {
            if v >> i & 1 == 1 {
                self.apply(Gate::X(q))?;
            }
        }
        Ok(qubits)
    }

    fn new_qustring(&mut self, bits: &str) -> R<Vec<usize>> {
        if bits.is_empty() || !bits.chars().all(|c| c == '0' || c == '1') {
            return Err(Stop);
        }
        let qubits = self.allocate(bits.len())?;
        for (i, c) in bits.chars().enumerate() {
            if c == '1' {
                self.apply(Gate::X(qubits[i]))?;
            }
        }
        Ok(qubits)
    }

    // ---- quantum arithmetic (mirrors Interp) ----------------------------

    fn cx_copy(&mut self, src: &[usize], width: usize) -> R<Vec<usize>> {
        let dst = self.acquire(width)?;
        for (i, &s) in src.iter().enumerate().take(width) {
            self.apply(Gate::CX {
                control: s,
                target: dst[i],
            })?;
        }
        Ok(dst)
    }

    fn uncompute_cx_copy(&mut self, src: &[usize], dst: &[usize]) -> R<()> {
        for (i, &s) in src.iter().enumerate().take(dst.len()) {
            self.apply(Gate::CX {
                control: s,
                target: dst[i],
            })?;
        }
        Ok(())
    }

    fn quint_add_sub_in_place(&mut self, target: &[usize], rhs: AVal, subtract: bool) -> R<()> {
        match rhs {
            // `add_const` (the Draper adder) emits the same gate count for
            // every constant — only the phase angles differ — so an
            // unknown classical addend still mirrors exactly.
            AVal::Int(k) => {
                let k = match k {
                    Some(k) if k >= 0 => k as u64,
                    Some(_) => return Err(Stop),
                    None => 0,
                };
                let n = target.len() as u32;
                let k = if subtract {
                    let modulus = 1u64.checked_shl(n).ok_or(Stop)?;
                    let k = k % modulus;
                    (modulus - k) % modulus
                } else {
                    k
                };
                let mut frag = self.fragment();
                arithmetic::add_const(&mut frag, target, k).map_err(|_| Stop)?;
                self.apply_fragment(&frag)?;
            }
            AVal::Bool(b) => {
                return self.quint_add_sub_in_place(
                    target,
                    AVal::Int(b.map(|b| b as i64)),
                    subtract,
                )
            }
            AVal::Quantum(q, QKind::Quint) => {
                let w = target.len();
                let tmp = self.cx_copy(&q, w)?;
                let carry = self.acquire(1)?;
                let mut frag = self.fragment();
                let r = if subtract {
                    arithmetic::sub_in_place(&mut frag, &tmp, target, carry[0])
                } else {
                    arithmetic::add_in_place(&mut frag, &tmp, target, carry[0])
                };
                r.map_err(|_| Stop)?;
                self.apply_fragment(&frag)?;
                self.uncompute_cx_copy(&q, &tmp)?;
                self.release(&tmp);
                self.release(&carry);
            }
            AVal::Unknown => {
                self.inexact("quint arithmetic with an operand the estimator lost track of");
            }
            _ => return Err(Stop),
        }
        Ok(())
    }

    fn quint_add_sub_expr(&mut self, a: &[usize], rhs: AVal, subtract: bool) -> R<AVal> {
        let rhs_width = match &rhs {
            AVal::Int(Some(k)) if *k >= 0 => bits_for(*k as u64),
            AVal::Int(Some(_)) => return Err(Stop),
            AVal::Bool(_) => 1,
            AVal::Quantum(q, QKind::Quint) => q.len(),
            AVal::Int(None) | AVal::Unknown => {
                self.inexact("quint arithmetic with a run-dependent operand: result width unknown");
                return Ok(AVal::Unknown);
            }
            _ => return Err(Stop),
        };
        let w = a.len().max(rhs_width) + usize::from(!subtract);
        let result = self.cx_copy(a, w)?;
        self.quint_add_sub_in_place(&result, rhs, subtract)?;
        Ok(AVal::Quantum(result, QKind::Quint))
    }

    fn quint_mul_expr(&mut self, a: &[usize], rhs: AVal) -> R<AVal> {
        let mut constant_factor: Option<(u64, Vec<usize>)> = None;
        let b: Vec<usize> = match rhs {
            AVal::Quantum(q, QKind::Quint) => q,
            AVal::Int(Some(k)) if k >= 0 => {
                let r = self.new_quint(k as u64, None)?;
                constant_factor = Some((k as u64, r.clone()));
                r
            }
            AVal::Bool(Some(bit)) => {
                let r = self.new_quint(bit as u64, None)?;
                constant_factor = Some((bit as u64, r.clone()));
                r
            }
            AVal::Int(None) | AVal::Bool(None) | AVal::Unknown => {
                self.inexact("quint multiplication by a run-dependent factor: width unknown");
                return Ok(AVal::Unknown);
            }
            _ => return Err(Stop),
        };
        let pw = a.len() + b.len();
        let product = self.allocate(pw)?;
        let carry = self.acquire(1)?;
        let mut frag = self.fragment();
        arithmetic::mul_into(&mut frag, a, &b, &product, carry[0]).map_err(|_| Stop)?;
        self.apply_fragment(&frag)?;
        self.release(&carry);
        if let Some((k, factor)) = constant_factor {
            for (i, &fq) in factor.iter().enumerate() {
                if k >> i & 1 == 1 {
                    self.apply(Gate::X(fq))?;
                }
            }
            self.release(&factor);
        }
        Ok(AVal::Quantum(product, QKind::Quint))
    }

    fn rotate_in_place(&mut self, qubits: &[usize], k: usize, left: bool) -> R<()> {
        let mut frag = self.fragment();
        let r = if left {
            rotation::rotate_left_constant_depth(&mut frag, qubits, k)
        } else {
            rotation::rotate_right_constant_depth(&mut frag, qubits, k)
        };
        r.map_err(|_| Stop)?;
        self.apply_fragment(&frag)
    }

    // ---- the `in` operator: Grover substring search -----------------------

    /// Upper-bounds `pattern in haystack` for a qustring haystack.
    ///
    /// The runtime's BBHT schedule draws random iteration counts and may
    /// return early, so the real circuit is run-dependent; the mirror
    /// plays the schedule's *worst case* (maximum draw every round, no
    /// early exit), which dominates every actual run. `bits` is `None`
    /// when the pattern string is not statically known, in which case the
    /// worst pattern (every length, all-zero bits — the most X-conjugation
    /// in the oracle) is taken.
    fn substring_search_upper_bound(&mut self, bits: Option<Vec<bool>>, hay: &[usize]) -> R<AVal> {
        let n = hay.len();
        self.inexact(
            "Grover substring search ('in'): the BBHT schedule is randomized, so the \
             mirrored counts are its worst case",
        );
        match bits {
            Some(b) if b.is_empty() => Ok(AVal::Bool(Some(true))),
            Some(b) if b.len() > n => Ok(AVal::Bool(Some(false))),
            Some(b) => {
                self.mirror_substring(&b, hay)?;
                Ok(AVal::Bool(None))
            }
            None => {
                if n == 0 {
                    // Any non-empty pattern misses; the empty one matches.
                    // Either way no circuit is built.
                    return Ok(AVal::Bool(None));
                }
                // Unknown pattern: bound every length, keep the world with
                // the most gates, and fold the other lengths' excesses into
                // additive slack so each metric stays an upper bound.
                let mut best: Option<Est<'p>> = None;
                let (mut max_g, mut max_d, mut max_q, mut max_m) = (0, 0, 0, 0);
                for m in 1..=n {
                    let mut world = self.clone();
                    world.mirror_substring(&vec![false; m], hay)?;
                    let g = world.circ.size();
                    max_d = max_d.max(world.circ.depth());
                    max_q = max_q.max(world.circ.num_qubits());
                    max_m = max_m.max(world.measurements);
                    if g >= max_g {
                        max_g = g;
                        best = Some(world);
                    }
                }
                let Some(chosen) = best else { return Err(Stop) };
                let (d, q, meas) = (
                    chosen.circ.depth(),
                    chosen.circ.num_qubits(),
                    chosen.measurements,
                );
                *self = chosen;
                self.slack_depth += max_d.saturating_sub(d);
                self.slack_qubits += max_q.saturating_sub(q);
                self.slack_meas += max_m.saturating_sub(meas);
                Ok(AVal::Bool(None))
            }
        }
    }

    /// Plays the worst-case BBHT run onto the shadow circuit, mirroring
    /// the runtime's fragment construction op for op.
    fn mirror_substring(&mut self, bits: &[bool], hay: &[usize]) -> R<()> {
        let n = hay.len();
        let m = bits.len();
        if n > 32 {
            // A qustring this wide cannot be simulated densely anyway;
            // mirroring the search would explode the shadow circuit.
            return Err(Stop);
        }
        let positions = n - m + 1;
        let pw = usize::max(1, (usize::BITS - (positions - 1).leading_zeros()) as usize);
        let pos = self.acquire(pw)?;

        let values: Vec<u64> = (0..positions as u64).collect();
        let mut prep = self.fragment();
        state_prep::prepare_uniform_over(&mut prep, &pos, &values).map_err(|_| Stop)?;
        let prep_inv = prep.inverse().map_err(|_| Stop)?;

        let mut oracle = self.fragment();
        for i in 0..positions {
            let mut conjugated: Vec<usize> = Vec::new();
            for (bit, &pq) in pos.iter().enumerate() {
                if i >> bit & 1 == 0 {
                    oracle.x(pq).map_err(|_| Stop)?;
                    conjugated.push(pq);
                }
            }
            for (j, &pbit) in bits.iter().enumerate() {
                if !pbit {
                    oracle.x(hay[i + j]).map_err(|_| Stop)?;
                    conjugated.push(hay[i + j]);
                }
            }
            let mut involved: Vec<usize> = pos.clone();
            involved.extend((0..m).map(|j| hay[i + j]));
            let Some((&last, rest)) = involved.split_last() else {
                return Err(Stop);
            };
            oracle.mcz(rest, last).map_err(|_| Stop)?;
            for &q in conjugated.iter().rev() {
                oracle.x(q).map_err(|_| Stop)?;
            }
        }

        let mut diffusion = self.fragment();
        diffusion.extend(&prep_inv).map_err(|_| Stop)?;
        for &pq in &pos {
            diffusion.x(pq).map_err(|_| Stop)?;
        }
        let Some((&last, rest)) = pos.split_last() else {
            return Err(Stop);
        };
        diffusion.mcz(rest, last).map_err(|_| Stop)?;
        for &pq in &pos {
            diffusion.x(pq).map_err(|_| Stop)?;
        }
        diffusion.extend(&prep).map_err(|_| Stop)?;

        // Worst case of the runtime's loop: every round draws the maximum
        // iteration count, every candidate is in range (so the window
        // verification measure happens), the reset flips every pos bit,
        // and no round succeeds early.
        let sqrt_n = (positions as f64).sqrt();
        let max_rounds = 12 + 3 * sqrt_n.ceil() as usize;
        let mut bound = 1.0f64;
        for _ in 0..max_rounds {
            self.step()?;
            self.apply_fragment(&prep)?;
            let k = bound.ceil() as usize;
            for _ in 0..k {
                self.apply_fragment(&oracle)?;
                self.apply_fragment(&diffusion)?;
            }
            self.shadow_measure(&pos)?;
            for &pq in &pos {
                self.apply(Gate::X(pq))?;
            }
            self.shadow_measure(&hay[..m])?;
            bound = (bound * 1.3).min(sqrt_n.max(1.0));
        }
        self.release(&pos);
        Ok(())
    }

    // ---- expressions ------------------------------------------------------

    fn eval(&mut self, e: &Expr) -> R<AVal> {
        self.eval_with_target(e, None)
    }

    fn eval_condition(&mut self, e: &Expr) -> R<Option<bool>> {
        let v = self.eval(e)?;
        let v = self.measure_if_quantum(v)?;
        if matches!(v, AVal::Unknown) {
            return Ok(None);
        }
        Ok(v.as_bool())
    }

    fn eval_with_target(&mut self, e: &Expr, target: Option<&Type>) -> R<AVal> {
        self.step()?;
        match &e.kind {
            ExprKind::Int(v) => Ok(AVal::Int(Some(*v))),
            ExprKind::Float(v) => Ok(AVal::Float(Some(*v))),
            ExprKind::Bool(b) => Ok(AVal::Bool(Some(*b))),
            ExprKind::Str(s) => Ok(AVal::Str(Some(s.clone()))),
            ExprKind::Pi => Ok(AVal::Float(Some(std::f64::consts::PI))),
            ExprKind::Quint(v) => {
                if matches!(target, Some(Type::Qubit)) && *v <= 1 {
                    let qubits = self.allocate(1)?;
                    if *v == 1 {
                        self.apply(Gate::X(qubits[0]))?;
                    }
                    Ok(AVal::Quantum(qubits, QKind::Qubit))
                } else {
                    Ok(AVal::Quantum(self.new_quint(*v, None)?, QKind::Quint))
                }
            }
            ExprKind::Qustring(s) => Ok(AVal::Quantum(self.new_qustring(s)?, QKind::Qustring)),
            ExprKind::Ket(k) => {
                let qubits = self.allocate(1)?;
                match k {
                    KetState::Zero => {}
                    KetState::One => self.apply(Gate::X(qubits[0]))?,
                    KetState::Plus => self.apply(Gate::H(qubits[0]))?,
                    KetState::Minus => {
                        self.apply(Gate::X(qubits[0]))?;
                        self.apply(Gate::H(qubits[0]))?;
                    }
                }
                Ok(AVal::Quantum(qubits, QKind::Qubit))
            }
            ExprKind::Array(elems) => {
                let elem_target = match target {
                    Some(Type::Array(t)) => Some((**t).clone()),
                    _ => None,
                };
                let mut items = Vec::with_capacity(elems.len());
                for el in elems {
                    let v = self.eval_with_target(el, elem_target.as_ref())?;
                    let v = match &elem_target {
                        Some(t) => self.coerce(v, t)?,
                        None => v,
                    };
                    items.push(v);
                }
                Ok(AVal::Array(items))
            }
            ExprKind::QuantumArray(elems) => {
                let vals: Vec<AVal> = elems
                    .iter()
                    .map(|el| self.eval(el))
                    .collect::<R<Vec<_>>>()?;
                let any_float = vals.iter().any(|v| matches!(v, AVal::Float(_)));
                if any_float || matches!(target, Some(Type::Qubit)) {
                    let (Some(a), Some(b)) = (
                        vals.first().and_then(AVal::as_f64),
                        vals.get(1).and_then(AVal::as_f64),
                    ) else {
                        self.inexact("qubit amplitude literal with run-dependent amplitudes");
                        return Ok(AVal::Unknown);
                    };
                    if vals.len() != 2 {
                        return Err(Stop);
                    }
                    let norm = (a * a + b * b).sqrt();
                    if !norm.is_finite() || norm < 1e-9 || (norm - 1.0).abs() > 1e-6 {
                        return Err(Stop);
                    }
                    let qubits = self.allocate(1)?;
                    let mut frag = self.fragment();
                    state_prep::prepare_real_amplitudes(&mut frag, &qubits, &[a / norm, b / norm])
                        .map_err(|_| Stop)?;
                    self.apply_fragment(&frag)?;
                    Ok(AVal::Quantum(qubits, QKind::Qubit))
                } else {
                    let values: Option<Vec<u64>> = vals
                        .iter()
                        .map(|v| v.as_i64().filter(|&i| i >= 0).map(|i| i as u64))
                        .collect();
                    let Some(values) = values else {
                        self.inexact(
                            "superposition literal with run-dependent values: state \
                             preparation network unknown",
                        );
                        return Ok(AVal::Unknown);
                    };
                    if values.is_empty() {
                        return Err(Stop);
                    }
                    let width = values.iter().map(|&v| bits_for(v)).max().unwrap_or(1);
                    let qubits = self.allocate(width)?;
                    let mut frag = self.fragment();
                    state_prep::prepare_uniform_over(&mut frag, &qubits, &values)
                        .map_err(|_| Stop)?;
                    self.apply_fragment(&frag)?;
                    Ok(AVal::Quantum(qubits, QKind::Quint))
                }
            }
            ExprKind::Var(name) => match self.lookup(name) {
                Some(slot) => Ok(slot.val.clone()),
                None => Err(Stop),
            },
            ExprKind::Index(base, idx) => {
                let b = self.eval(base)?;
                let i = self.eval_index(idx)?;
                match (b, i) {
                    (AVal::Array(items), Some(i)) => match items.get(i) {
                        Some(v) => Ok(v.clone()),
                        None => Err(Stop),
                    },
                    (AVal::Quantum(qubits, _), Some(i)) => match qubits.get(i) {
                        Some(&q) => Ok(AVal::Quantum(vec![q], QKind::Qubit)),
                        None => Err(Stop),
                    },
                    (AVal::Str(Some(s)), Some(i)) => match s.chars().nth(i) {
                        Some(c) => Ok(AVal::Str(Some(c.to_string()))),
                        None => Err(Stop),
                    },
                    (AVal::Quantum(_, _), None) => {
                        self.inexact("quantum register indexed by a run-dependent value");
                        Ok(AVal::Unknown)
                    }
                    _ => Ok(AVal::Unknown),
                }
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner)?;
                let v = self.measure_if_quantum(v)?;
                Ok(match op {
                    UnOp::Neg => match v {
                        AVal::Int(i) => AVal::Int(i.map(|i| -i)),
                        AVal::Float(f) => AVal::Float(f.map(|f| -f)),
                        AVal::Unknown => AVal::Unknown,
                        _ => return Err(Stop),
                    },
                    UnOp::Not => match v.as_bool() {
                        Some(b) => AVal::Bool(Some(!b)),
                        None if matches!(v, AVal::Bool(_) | AVal::Int(_) | AVal::Unknown) => {
                            AVal::Bool(None)
                        }
                        None => return Err(Stop),
                    },
                })
            }
            ExprKind::Binary(op, l, r) => self.eval_binary(*op, l, r),
            ExprKind::Call(name, args) => self.eval_call(name, args),
            ExprKind::MeasureExpr(inner) => {
                let v = self.eval(inner)?;
                match v {
                    q @ AVal::Quantum(_, _) => self.measure_if_quantum(q),
                    AVal::Unknown => {
                        self.inexact("measure of a value the estimator lost track of");
                        self.slack_meas += 1;
                        Ok(AVal::Unknown)
                    }
                    _ => Err(Stop),
                }
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, l: &Expr, r: &Expr) -> R<AVal> {
        use BinOp::*;
        if matches!(op, And | Or) {
            let lv = self.eval_condition(l)?;
            return match (op, lv) {
                (And, Some(false)) => Ok(AVal::Bool(Some(false))),
                (Or, Some(true)) => Ok(AVal::Bool(Some(true))),
                (_, Some(_)) => {
                    let rv = self.eval_condition(r)?;
                    Ok(AVal::Bool(rv))
                }
                (_, None) => {
                    // Whether the right side (and its measurements) runs
                    // depends on the unknown left value: explore both.
                    let r = r.clone();
                    self.explore(
                        move |e| {
                            e.eval_condition(&r)?;
                            Ok(Flow::Normal)
                        },
                        |_| Ok(Flow::Normal),
                    )?;
                    Ok(AVal::Bool(None))
                }
            };
        }

        let lv = self.eval(l)?;

        if op == In {
            let rv = self.eval(r)?;
            let pattern = self.measure_if_quantum(lv)?;
            return match rv {
                AVal::Quantum(hay, QKind::Qustring) => {
                    let bits = match &pattern {
                        AVal::Str(Some(p)) => {
                            if !p.chars().all(|c| c == '0' || c == '1') {
                                return Err(Stop);
                            }
                            Some(p.chars().map(|c| c == '1').collect::<Vec<bool>>())
                        }
                        AVal::Str(None) => None,
                        _ => return Err(Stop),
                    };
                    self.substring_search_upper_bound(bits, &hay)
                }
                rv => self.classical_binary(BinOp::In, pattern, rv),
            };
        }

        if let AVal::Quantum(q, kind) = &lv {
            if *kind == QKind::Quint && matches!(op, Add | Sub) {
                let q = q.clone();
                let rv = self.eval(r)?;
                return self.quint_add_sub_expr(&q, rv, op == Sub);
            }
            if *kind == QKind::Quint && op == Mul {
                let q = q.clone();
                let rv = self.eval(r)?;
                return self.quint_mul_expr(&q, rv);
            }
            if matches!(op, Shl | Shr) {
                let (q, kind) = (q.clone(), *kind);
                let rv = self.eval(r)?;
                let Some(k) = rv.as_i64().filter(|&k| k >= 0) else {
                    self.inexact(
                        "cyclic shift by a run-dependent amount: rotation network unknown",
                    );
                    return Ok(AVal::Unknown);
                };
                let copy = self.cx_copy(&q, q.len())?;
                self.rotate_in_place(&copy, k as usize, op == Shl)?;
                return Ok(AVal::Quantum(copy, kind));
            }
        }
        if let (Add | Mul, AVal::Int(_) | AVal::Bool(_)) = (op, &lv) {
            let rv = self.eval(r)?;
            if let AVal::Quantum(q, QKind::Quint) = &rv {
                let q = q.clone();
                return if op == Add {
                    self.quint_add_sub_expr(&q, lv, false)
                } else {
                    self.quint_mul_expr(&q, lv)
                };
            }
            return self.classical_binary(op, lv, rv);
        }

        let rv = self.eval(r)?;
        self.classical_binary(op, lv, rv)
    }

    /// Classical folding that mirrors `Interp::classical_binary`; quantum
    /// operands are measured, unknown operands yield unknown results.
    fn classical_binary(&mut self, op: BinOp, lv: AVal, rv: AVal) -> R<AVal> {
        use BinOp::*;
        let lv = self.measure_if_quantum(lv)?;
        let rv = self.measure_if_quantum(rv)?;
        if matches!(lv, AVal::Unknown) || matches!(rv, AVal::Unknown) {
            return Ok(AVal::Unknown);
        }
        let unknown_operand = |v: &AVal| {
            matches!(
                v,
                AVal::Bool(None) | AVal::Int(None) | AVal::Float(None) | AVal::Str(None)
            )
        };
        if unknown_operand(&lv) || unknown_operand(&rv) {
            // The operation still type-checks; only the value is lost.
            return Ok(match op {
                Eq | Ne | Lt | Le | Gt | Ge | In => AVal::Bool(None),
                _ => AVal::Unknown,
            });
        }
        Ok(match op {
            Add => match (&lv, &rv) {
                (AVal::Str(Some(a)), AVal::Str(Some(b))) => AVal::Str(Some(format!("{a}{b}"))),
                (AVal::Int(Some(a)), AVal::Int(Some(b))) => AVal::Int(Some(a.wrapping_add(*b))),
                _ => match (lv.as_f64(), rv.as_f64()) {
                    (Some(a), Some(b)) => AVal::Float(Some(a + b)),
                    _ => return Err(Stop),
                },
            },
            Sub => match (&lv, &rv) {
                (AVal::Int(Some(a)), AVal::Int(Some(b))) => AVal::Int(Some(a.wrapping_sub(*b))),
                _ => match (lv.as_f64(), rv.as_f64()) {
                    (Some(a), Some(b)) => AVal::Float(Some(a - b)),
                    _ => return Err(Stop),
                },
            },
            Mul => match (&lv, &rv) {
                (AVal::Int(Some(a)), AVal::Int(Some(b))) => AVal::Int(Some(a.wrapping_mul(*b))),
                _ => match (lv.as_f64(), rv.as_f64()) {
                    (Some(a), Some(b)) => AVal::Float(Some(a * b)),
                    _ => return Err(Stop),
                },
            },
            Div => match (&lv, &rv) {
                (AVal::Int(Some(a)), AVal::Int(Some(b))) => {
                    if *b == 0 {
                        return Err(Stop);
                    } else if a % b == 0 {
                        AVal::Int(Some(a / b))
                    } else {
                        AVal::Float(Some(*a as f64 / *b as f64))
                    }
                }
                _ => match (lv.as_f64(), rv.as_f64()) {
                    (Some(a), Some(b)) if b != 0.0 => AVal::Float(Some(a / b)),
                    _ => return Err(Stop),
                },
            },
            Mod => match (&lv, &rv) {
                (AVal::Int(Some(a)), AVal::Int(Some(b))) => {
                    if *b == 0 {
                        return Err(Stop);
                    }
                    AVal::Int(Some(a.rem_euclid(*b)))
                }
                _ => return Err(Stop),
            },
            Shl | Shr => match (&lv, rv.as_i64()) {
                (AVal::Int(Some(a)), Some(k)) if k >= 0 => AVal::Int(Some(if op == Shl {
                    a.wrapping_shl(k as u32)
                } else {
                    a.wrapping_shr(k as u32)
                })),
                _ => return Err(Stop),
            },
            Eq | Ne => {
                let eq = match (&lv, &rv) {
                    (AVal::Str(Some(a)), AVal::Str(Some(b))) => a == b,
                    (AVal::Bool(Some(a)), AVal::Bool(Some(b))) => a == b,
                    _ => match (lv.as_f64(), rv.as_f64()) {
                        (Some(a), Some(b)) => a == b,
                        _ => return Err(Stop),
                    },
                };
                AVal::Bool(Some(if op == Eq { eq } else { !eq }))
            }
            Lt | Le | Gt | Ge => {
                let ord = match (&lv, &rv) {
                    (AVal::Str(Some(a)), AVal::Str(Some(b))) => a.partial_cmp(b),
                    _ => match (lv.as_f64(), rv.as_f64()) {
                        (Some(a), Some(b)) => a.partial_cmp(&b),
                        _ => return Err(Stop),
                    },
                };
                let Some(ord) = ord else { return Err(Stop) };
                AVal::Bool(Some(match op {
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    _ => ord.is_ge(),
                }))
            }
            In => match (&lv, &rv) {
                (AVal::Str(Some(p)), AVal::Str(Some(h))) => AVal::Bool(Some(h.contains(p))),
                _ => return Err(Stop),
            },
            And | Or => return Err(Stop),
        })
    }

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> R<AVal> {
        if let Some(v) = self.eval_builtin(name, args)? {
            return Ok(v);
        }
        let Some(decl) = self.functions.get(name).copied() else {
            return Err(Stop);
        };
        if args.len() != decl.params.len() {
            return Err(Stop);
        }
        if self.call_depth + 1 > MAX_CALL_DEPTH {
            self.inexact("call depth exceeds the estimator's bound");
            return Ok(AVal::Unknown);
        }
        // Plain-variable arguments of exactly matching type bind by
        // reference in the runtime; mirror that with a copy-back.
        let mut bindings: Vec<(String, Type, AVal)> = Vec::with_capacity(args.len());
        let mut by_ref: Vec<(String, String)> = Vec::new();
        for (a, p) in args.iter().zip(&decl.params) {
            let referenced = if let ExprKind::Var(var_name) = &a.kind {
                match self.lookup(var_name) {
                    Some(slot) if slot.ty == p.ty => Some((var_name.clone(), slot.val.clone())),
                    _ => None,
                }
            } else {
                None
            };
            let v = match referenced {
                Some((var_name, v)) => {
                    by_ref.push((var_name, p.name.clone()));
                    v
                }
                None => {
                    let v = self.eval_with_target(a, Some(&p.ty))?;
                    self.coerce(v, &p.ty)?
                }
            };
            bindings.push((p.name.clone(), p.ty.clone(), v));
        }
        self.call_depth += 1;
        // Hide caller locals: only globals (scope 0) plus parameters are
        // visible inside the function.
        let saved: Vec<HashMap<String, Slot>> = self.scopes.split_off(1);
        self.scopes.push(HashMap::new());
        for (pname, pty, v) in bindings {
            self.declare(&pname, pty, v);
        }
        let flow = self.exec_stmts(&decl.body.stmts);
        let param_scope = self.scopes.pop().unwrap_or_default();
        self.scopes.truncate(1);
        self.scopes.extend(saved);
        self.call_depth -= 1;
        for (var_name, pname) in by_ref {
            if let Some(slot) = param_scope.get(&pname) {
                let v = slot.val.clone();
                if let Some(target) = self.lookup_mut(&var_name) {
                    target.val = v;
                }
            }
        }
        match flow? {
            Flow::Return(v) => Ok(v),
            Flow::Normal if decl.ret_type == Type::Void => Ok(AVal::Void),
            Flow::Normal => Err(Stop),
        }
    }

    fn eval_builtin(&mut self, name: &str, args: &[Expr]) -> R<Option<AVal>> {
        let v = match name {
            "len" => {
                let Some(a) = args.first() else {
                    return Err(Stop);
                };
                match self.eval(a)? {
                    AVal::Array(items) => AVal::Int(Some(items.len() as i64)),
                    AVal::Str(s) => AVal::Int(s.map(|s| s.chars().count() as i64)),
                    AVal::Quantum(q, _) => AVal::Int(Some(q.len() as i64)),
                    AVal::Unknown => AVal::Int(None),
                    _ => return Err(Stop),
                }
            }
            "width" => {
                let Some(a) = args.first() else {
                    return Err(Stop);
                };
                match self.eval(a)? {
                    AVal::Quantum(q, _) => AVal::Int(Some(q.len() as i64)),
                    AVal::Unknown => AVal::Int(None),
                    _ => return Err(Stop),
                }
            }
            "range" => {
                let Some(a) = args.first() else {
                    return Err(Stop);
                };
                match self.eval(a)?.as_i64() {
                    Some(n) if n >= 0 => AVal::Array((0..n).map(|i| AVal::Int(Some(i))).collect()),
                    Some(_) => return Err(Stop),
                    None => AVal::Unknown,
                }
            }
            "int" | "float" | "bool" | "str" => {
                let Some(a) = args.first() else {
                    return Err(Stop);
                };
                let v = self.eval(a)?;
                let v = self.measure_if_quantum(v)?;
                match name {
                    "int" => match v {
                        AVal::Int(i) => AVal::Int(i),
                        AVal::Float(f) => AVal::Int(f.map(|f| f.trunc() as i64)),
                        AVal::Bool(b) => AVal::Int(b.map(|b| b as i64)),
                        AVal::Str(Some(s)) => match s.trim().parse::<i64>() {
                            Ok(i) => AVal::Int(Some(i)),
                            Err(_) => return Err(Stop),
                        },
                        AVal::Str(None) | AVal::Unknown => AVal::Int(None),
                        _ => return Err(Stop),
                    },
                    "float" => match v.as_f64() {
                        Some(f) => AVal::Float(Some(f)),
                        None => match v {
                            AVal::Str(Some(s)) => match s.trim().parse::<f64>() {
                                Ok(f) => AVal::Float(Some(f)),
                                Err(_) => return Err(Stop),
                            },
                            AVal::Int(None)
                            | AVal::Float(None)
                            | AVal::Bool(None)
                            | AVal::Str(None)
                            | AVal::Unknown => AVal::Float(None),
                            _ => return Err(Stop),
                        },
                    },
                    "bool" => AVal::Bool(match v {
                        AVal::Unknown
                        | AVal::Bool(None)
                        | AVal::Int(None)
                        | AVal::Float(None)
                        | AVal::Str(None) => None,
                        known => match known.as_bool() {
                            Some(b) => Some(b),
                            None => return Err(Stop),
                        },
                    }),
                    _ => match v {
                        AVal::Int(Some(i)) => AVal::Str(Some(i.to_string())),
                        AVal::Bool(Some(b)) => AVal::Str(Some(b.to_string())),
                        AVal::Str(s) => AVal::Str(s),
                        AVal::Float(Some(f)) => AVal::Str(Some(f.to_string())),
                        _ => AVal::Str(None),
                    },
                }
            }
            "qmin" | "qmax" => {
                // Dürr–Høyer runs on its own internal circuit, so it costs
                // nothing in the accumulated circuit — but quantum array
                // elements are measured first, which does.
                let Some(a) = args.first() else {
                    return Err(Stop);
                };
                match self.eval(a)? {
                    AVal::Array(items) => {
                        if items.is_empty() {
                            return Err(Stop);
                        }
                        for item in items {
                            self.measure_if_quantum(item)?;
                        }
                        AVal::Int(None)
                    }
                    AVal::Unknown => {
                        self.inexact("qmin/qmax over a collection the estimator lost track of");
                        AVal::Int(None)
                    }
                    _ => return Err(Stop),
                }
            }
            "rotl" | "rotr" => {
                let (Some(a0), Some(a1)) = (args.first(), args.get(1)) else {
                    return Err(Stop);
                };
                let q = self.eval(a0)?;
                let k = self.eval(a1)?;
                match (q, k.as_i64()) {
                    (AVal::Quantum(qubits, _), Some(k)) if k >= 0 => {
                        self.rotate_in_place(&qubits, k as usize, name == "rotl")?;
                    }
                    (AVal::Quantum(_, _) | AVal::Unknown, _) => {
                        self.inexact(
                            "cyclic shift by a run-dependent amount: rotation network unknown",
                        );
                    }
                    _ => return Err(Stop),
                }
                AVal::Void
            }
            _ => return Ok(None),
        };
        Ok(Some(v))
    }

    // ---- both-worlds exploration -----------------------------------------

    /// Runs two alternative continuations on clones of the current state.
    /// If both worlds end in the same circuit and environment the merge is
    /// exact; otherwise the larger world is kept and the difference
    /// becomes additive slack (every figure stays an upper bound).
    fn explore(
        &mut self,
        then_f: impl FnOnce(&mut Est<'p>) -> R<Flow>,
        else_f: impl FnOnce(&mut Est<'p>) -> R<Flow>,
    ) -> R<Flow> {
        let mut a = self.clone();
        let mut b = self.clone();
        let fa = then_f(&mut a)?;
        let fb = else_f(&mut b)?;
        self.steps = a.steps.max(b.steps);
        // A non-Clifford gate on *either* path poisons the Clifford
        // claim — the discarded world's gates survive only as slack
        // counts, so the bit must be merged before a world is dropped.
        let clifford_both = a.clifford_only && b.clifford_only;

        let same_world = a.circ.ops() == b.circ.ops()
            && a.circ.num_qubits() == b.circ.num_qubits()
            && a.free == b.free
            && a.measurements == b.measurements
            && a.scopes == b.scopes
            && a.slack_gates == b.slack_gates
            && a.slack_qubits == b.slack_qubits
            && a.slack_meas == b.slack_meas;
        if same_world {
            let steps = self.steps;
            *self = a;
            self.steps = steps;
            self.clifford_only = clifford_both;
            // The worlds agree, but differing return values still matter.
            return Ok(match (fa, fb) {
                (Flow::Return(va), Flow::Return(vb)) => {
                    Flow::Return(if va == vb { va } else { AVal::Unknown })
                }
                (Flow::Normal, Flow::Normal) => Flow::Normal,
                (f @ Flow::Return(_), Flow::Normal) | (Flow::Normal, f @ Flow::Return(_)) => {
                    self.inexact("a measurement-dependent branch may return early");
                    f
                }
            });
        }

        let totals = |w: &Est<'p>| {
            (
                w.circ.size() + w.slack_gates,
                w.circ.depth() + w.slack_depth,
                w.circ.num_qubits() + w.slack_qubits,
                w.measurements + w.slack_meas,
            )
        };
        let ta = totals(&a);
        let tb = totals(&b);
        let (mut kept, other, to, kept_flow, other_flow) = if ta.0 >= tb.0 {
            (a, tb, ta, fa, fb)
        } else {
            (b, ta, tb, fb, fa)
        };
        kept.slack_gates += other.0.saturating_sub(to.0);
        kept.slack_depth += other.1.saturating_sub(to.1);
        kept.slack_qubits += other.2.saturating_sub(to.2);
        kept.slack_meas += other.3.saturating_sub(to.3);
        kept.inexact(
            "measurement-dependent branches build different circuits: totals are the \
             larger branch plus slack for the other",
        );
        let steps = self.steps;
        *self = kept;
        self.steps = steps;
        self.clifford_only = clifford_both;
        // Values that differ between the worlds are no longer known. The
        // kept world's bindings survive only where both agree; the scope
        // *structure* is identical (branches balance their push/pop).
        // After a structural divergence, conservatively havoc everything.
        self.havoc_all();
        Ok(match (kept_flow, other_flow) {
            (Flow::Return(va), Flow::Return(vb)) => {
                Flow::Return(if va == vb { va } else { AVal::Unknown })
            }
            (f @ Flow::Return(_), Flow::Normal) | (Flow::Normal, f @ Flow::Return(_)) => f,
            (Flow::Normal, Flow::Normal) => Flow::Normal,
        })
    }

    fn havoc_all(&mut self) {
        for scope in &mut self.scopes {
            for slot in scope.values_mut() {
                // Quantum registers keep their identity (the qubits exist
                // either way); classical values diverge.
                if !slot.val.is_quantum() {
                    slot.val = AVal::Unknown;
                }
            }
        }
    }
}

/// Best-effort static type of an abstract value (for foreach bindings).
fn abstract_type(v: &AVal) -> Type {
    match v {
        AVal::Bool(_) => Type::Bool,
        AVal::Int(_) => Type::Int,
        AVal::Float(_) => Type::Float,
        AVal::Str(_) => Type::String,
        AVal::Quantum(_, k) => k.as_type(),
        AVal::Array(_) => Type::Array(Box::new(Type::Int)),
        AVal::Void => Type::Void,
        AVal::Unknown => Type::Int,
    }
}

/// Syntactic set of variable names a statement list may write to
/// (assignment targets and by-reference call arguments), used to havoc
/// state after loops whose trip count is unknown.
fn assigned_names(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        match &e.kind {
            ExprKind::Call(_, args) => {
                for a in args {
                    if let ExprKind::Var(n) = &a.kind {
                        if !out.contains(n) {
                            out.push(n.clone());
                        }
                    }
                    walk_expr(a, out);
                }
            }
            ExprKind::Unary(_, inner) | ExprKind::MeasureExpr(inner) => walk_expr(inner, out),
            ExprKind::Binary(_, l, r) => {
                walk_expr(l, out);
                walk_expr(r, out);
            }
            ExprKind::Index(b, i) => {
                walk_expr(b, out);
                walk_expr(i, out);
            }
            ExprKind::Array(items) | ExprKind::QuantumArray(items) => {
                for i in items {
                    walk_expr(i, out);
                }
            }
            _ => {}
        }
    }
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Assign { target, value, .. } => {
                    let (LValue::Name(n) | LValue::Index(n, _)) = target;
                    if !out.contains(n) {
                        out.push(n.clone());
                    }
                    walk_expr(value, out);
                }
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    ..
                } => {
                    walk_expr(cond, out);
                    walk(&then_block.stmts, out);
                    if let Some(eb) = else_block {
                        walk(&eb.stmts, out);
                    }
                }
                Stmt::While { cond, body, .. } => {
                    walk_expr(cond, out);
                    walk(&body.stmts, out);
                }
                Stmt::Foreach { iterable, body, .. } => {
                    walk_expr(iterable, out);
                    walk(&body.stmts, out);
                }
                Stmt::VarDecl { init, .. } => {
                    if let Some(e) = init {
                        walk_expr(e, out);
                    }
                }
                Stmt::Return { value: Some(e), .. }
                | Stmt::Print { value: e, .. }
                | Stmt::Expr { expr: e, .. }
                | Stmt::Measure { target: e, .. } => walk_expr(e, out),
                Stmt::Gate { args, .. } => {
                    for a in args {
                        walk_expr(a, out);
                    }
                }
                Stmt::Block(b) => walk(&b.stmts, out),
                Stmt::Return { value: None, .. } | Stmt::Barrier { .. } => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qutes_frontend::parse;

    fn est(src: &str) -> ResourceEstimate {
        estimate(&parse(src).expect("test program parses"))
    }

    #[test]
    fn empty_program_is_exact_zero() {
        let e = est("int x = 1;\nprint x;\n");
        assert!(e.exact);
        assert_eq!(e.qubits, 0);
        assert_eq!(e.gates, 0);
        assert_eq!(e.measurements, 0);
    }

    #[test]
    fn bell_pair_counts() {
        let e =
            est("qubit a = |0>;\nqubit b = |0>;\nhadamard a;\ncnot a, b;\nprint a;\nprint b;\n");
        assert!(e.exact, "notes: {:?}", e.notes);
        assert_eq!(e.qubits, 2);
        // H + CX + 2 measure instructions.
        assert_eq!(e.gates, 4);
        assert_eq!(e.measurements, 2);
    }

    #[test]
    fn known_loops_unroll_exactly() {
        let e = est(
            "quint a = 3q;\nint i = 0;\nwhile (i < 3) {\n  a += 1;\n  i = i + 1;\n}\nprint a;\n",
        );
        assert!(e.exact, "notes: {:?}", e.notes);
        assert_eq!(e.qubits, 2);
        assert!(e.gates > 0);
    }

    #[test]
    fn unknown_condition_with_identical_branches_stays_exact() {
        let e = est(
            "qubit q = |+>;\nbool b = q;\nif (b) {\n  print \"yes\";\n} else {\n  print \"no\";\n}\n",
        );
        assert!(e.exact, "notes: {:?}", e.notes);
        assert_eq!(e.measurements, 1);
    }

    #[test]
    fn divergent_branches_become_upper_bounds() {
        let e = est(
            "qubit q = |+>;\nqubit t = |0>;\nbool b = q;\nif (b) {\n  not t;\n  not t;\n} else {\n}\nprint t;\n",
        );
        assert!(!e.exact);
        assert_eq!(e.gates, 1 + 2 + 2, "H, 2 X (larger branch), 2 measures");
        assert!(!e.notes.is_empty());
    }

    #[test]
    fn grover_in_is_flagged_inexact() {
        let e = est("qustring t = \"0110\"q;\nbool hit = \"11\" in t;\nprint hit;\n");
        assert!(!e.exact);
        assert!(e.notes.iter().any(|n| n.contains("BBHT")));
    }

    #[test]
    fn summary_mentions_exactness() {
        let e = est("qubit a = |1>;\nprint a;\n");
        assert!(e.summary().contains("exact"));
        assert!(e.summary().contains("1 qubit,"));
    }

    #[test]
    fn clifford_only_holds_for_ghz_style_programs() {
        let e =
            est("qubit a = |0>;\nqubit b = |0>;\nhadamard a;\ncnot a, b;\nprint a;\nprint b;\n");
        assert!(e.clifford_only, "H/CX/measure are all Clifford");
        assert!(e.summary().contains("clifford-only"), "{}", e.summary());
    }

    #[test]
    fn clifford_only_false_for_arithmetic_programs() {
        // Quint addition lowers to phase rotations — not Clifford.
        let e = est("quint a = 3q;\na += 1;\nprint a;\n");
        assert!(!e.clifford_only, "ripple adders use non-Clifford phases");
        assert!(!e.summary().contains("clifford-only"), "{}", e.summary());
    }

    #[test]
    fn clifford_only_poisoned_by_either_branch() {
        // The non-Clifford gate sits in the *smaller* (discarded) branch;
        // the merge must still poison the Clifford bit.
        let e = est(
            "qubit q = |+>;\nquint t = 0q;\nbool b = q;\nif (b) {\n  not t;\n  not t;\n  not t;\n} else {\n  t += 1;\n}\nprint t;\n",
        );
        assert!(!e.clifford_only, "notes: {:?}", e.notes);
    }

    #[test]
    fn clifford_only_false_when_estimation_gives_up() {
        // `in` search lowers via Grover/BBHT: inexact and non-Clifford.
        let e = est("qustring t = \"0110\"q;\nbool hit = \"11\" in t;\nprint hit;\n");
        assert!(!e.clifford_only);
    }

    #[test]
    fn clifford_only_survives_give_up_in_clifford_programs() {
        // The step budget trips mid-loop (gave_up = true), but every
        // construct in the program is syntactically Clifford, so the
        // classifier keeps the bit: a GHZ-style program with a long
        // classical preamble still dispatches to the tableau backend.
        let e = est("int i = 0;\nwhile (i < 10000000) {\n  i = i + 1;\n}\n\
             qubit a = |0>;\nqubit b = |0>;\nhadamard a;\ncnot a, b;\nprint a;\n");
        assert!(!e.exact, "the step budget must have tripped");
        assert!(
            e.clifford_only,
            "give-up must not poison the Clifford bit when the program \
             cannot emit non-Clifford gates; notes: {:?}",
            e.notes
        );
    }

    #[test]
    fn clifford_only_still_false_on_give_up_with_phase_gates() {
        // Same give-up shape, but a phase gate exists past the stop
        // point: the classifier must refuse to rescue the bit.
        let e = est("int i = 0;\nwhile (i < 10000000) {\n  i = i + 1;\n}\n\
             qubit q = |0>;\nphase(q, pi/4);\nprint q;\n");
        assert!(!e.exact);
        assert!(!e.clifford_only);
    }
}
