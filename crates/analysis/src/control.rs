//! Classical control-flow lints.
//!
//! - **QL102 unreachable-code** — statements that can never run because
//!   an earlier statement in the same block always returns. Only the
//!   first unreachable statement of a list is reported (everything after
//!   it is implied), but nested blocks are still walked so independent
//!   findings inside them are not lost.
//! - **QL103 constant-condition** — `if`/`while` conditions that are
//!   bare literals, so one outcome can never happen. Deliberately
//!   literal-only: folding arbitrary expressions would duplicate the
//!   resource estimator's abstract interpretation and risk false
//!   positives.

use crate::lints::{self};
use crate::RawFinding;
use qutes_frontend::ast::*;

/// Runs the control-flow lints over a whole program.
pub(crate) fn run(program: &Program) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    let top: Vec<&Stmt> = program
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Statement(s) => Some(s),
            _ => None,
        })
        .collect();
    walk_list(&top, &mut findings);
    for item in &program.items {
        if let Item::Function(f) = item {
            let body: Vec<&Stmt> = f.body.stmts.iter().collect();
            walk_list(&body, &mut findings);
        }
    }
    findings
}

/// True when executing `s` always leaves the enclosing function (so no
/// statement after it in the same block can run).
fn always_returns(s: &Stmt) -> bool {
    match s {
        Stmt::Return { .. } => true,
        Stmt::Block(b) => b.stmts.iter().any(always_returns),
        Stmt::If {
            then_block,
            else_block: Some(eb),
            ..
        } => then_block.stmts.iter().any(always_returns) && eb.stmts.iter().any(always_returns),
        _ => false,
    }
}

fn walk_list(stmts: &[&Stmt], findings: &mut Vec<RawFinding>) {
    let mut reported_unreachable = false;
    let mut terminated = false;
    for s in stmts {
        if terminated && !reported_unreachable {
            reported_unreachable = true;
            findings.push(RawFinding {
                lint: &lints::UNREACHABLE_CODE,
                message: "unreachable statement: an earlier statement in this block always returns"
                    .to_string(),
                span: s.span(),
                notes: Vec::new(),
            });
        }
        walk_stmt(s, findings);
        if always_returns(s) {
            terminated = true;
        }
    }
}

fn walk_stmt(s: &Stmt, findings: &mut Vec<RawFinding>) {
    match s {
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            check_condition(cond, "if", findings);
            walk_list(&then_block.stmts.iter().collect::<Vec<_>>(), findings);
            if let Some(eb) = else_block {
                walk_list(&eb.stmts.iter().collect::<Vec<_>>(), findings);
            }
        }
        Stmt::While { cond, body, .. } => {
            check_condition(cond, "while", findings);
            walk_list(&body.stmts.iter().collect::<Vec<_>>(), findings);
        }
        Stmt::Foreach { body, .. } => {
            walk_list(&body.stmts.iter().collect::<Vec<_>>(), findings);
        }
        Stmt::Block(b) => walk_list(&b.stmts.iter().collect::<Vec<_>>(), findings),
        _ => {}
    }
}

fn check_condition(cond: &Expr, kind: &str, findings: &mut Vec<RawFinding>) {
    let truth = match &cond.kind {
        ExprKind::Bool(b) => Some(*b),
        ExprKind::Int(i) => Some(*i != 0),
        _ => None,
    };
    if let Some(truth) = truth {
        let consequence = match (kind, truth) {
            ("while", false) => "; the loop body can never run",
            ("while", true) => "; the loop can never exit normally",
            _ => "; one branch can never run",
        };
        findings.push(RawFinding {
            lint: &lints::CONSTANT_CONDITION,
            message: format!("this {kind} condition is always {truth}{consequence}"),
            span: cond.span,
            notes: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qutes_frontend::parse;

    fn ids(src: &str) -> Vec<&'static str> {
        let program = parse(src).expect("test program parses");
        run(&program).iter().map(|f| f.lint.id).collect()
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let src = "int f() {\n  return 1;\n  print \"never\";\n}\nprint f();\n";
        assert_eq!(ids(src), vec!["QL102"]);
    }

    #[test]
    fn only_first_unreachable_statement_is_reported() {
        let src = "int f() {\n  return 1;\n  print \"a\";\n  print \"b\";\n}\nprint f();\n";
        assert_eq!(ids(src), vec!["QL102"]);
    }

    #[test]
    fn if_with_both_arms_returning_terminates() {
        let src = "int f(bool c) {\n  if (c) {\n    return 1;\n  } else {\n    return 2;\n  }\n  print \"never\";\n}\nprint f(true);\n";
        assert_eq!(ids(src), vec!["QL102"]);
    }

    #[test]
    fn if_without_else_does_not_terminate() {
        let src =
            "int f(bool c) {\n  if (c) {\n    return 1;\n  }\n  return 2;\n}\nprint f(true);\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn constant_conditions_fire_on_literals_only() {
        assert_eq!(ids("if (true) {\n  print 1;\n}\n"), vec!["QL103"]);
        assert_eq!(ids("while (0) {\n  print 1;\n}\n"), vec!["QL103"]);
        assert!(ids("bool c = true;\nif (c) {\n  print 1;\n}\n").is_empty());
    }
}
