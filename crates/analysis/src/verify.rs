//! Static translation validation of circuit rewrites.
//!
//! [`verify_rewrite`] decides whether two gate streams implement the
//! same quantum channel, **without simulating amplitudes** except in a
//! bounded fallback. [`verify_optimization`] applies it to every pass
//! boundary the optimizer reports (plus the whole-pipeline
//! composition), and [`install_optimizer_guard`] wires the same check
//! into `qutes_qcirc::optimize` itself for debug/CI builds, so every
//! rewrite performed anywhere in the test suite is validated.
//!
//! ## How a rewrite is decided
//!
//! 1. **Sync skeleton.** Both streams are split into unitary runs
//!    separated by the sync operations (measure/reset/conditional). No
//!    optimizer pass may create, drop or reorder sync operations, so
//!    differing skeletons are immediately `Inequivalent`; matching
//!    skeletons reduce the question to the pairwise equivalence of
//!    aligned unitary runs.
//! 2. **Run alignment**, under two schemes (see
//!    `qutes_qcirc::segment`): the **positional** view
//!    ([`qutes_qcirc::segment_ops`]), which aligns list-local rewrites
//!    such as gate fusion, and the **causal** view
//!    ([`qutes_qcirc::segment_ops_causal`]), which aligns the
//!    commutation-aware peephole's cancellations across anchors on
//!    disjoint wires. Each scheme's `Equivalent` is a proof; its
//!    `Inequivalent` may be mere misalignment. When neither scheme
//!    proves equivalence, the **channel fallback**
//!    ([`crate::domains::channel`]) compares the whole boundary as a
//!    quantum instrument — anchors included, outcome branches
//!    enumerated — which needs no alignment at all but is bounded to
//!    small supports. `Inequivalent` is only reported when the
//!    applicable checks independently prove a mismatch.
//! 3. **Tensor factoring.** Each aligned run pair is partitioned into
//!    connected components by qubit support (union of both sides).
//!    Disjoint factors are verified independently — equivalence up to
//!    global phase distributes over tensor products.
//! 4. **Domain dispatch** per component, cheapest exact domain first:
//!    the stabilizer domain ([`crate::domains::clifford`]) when every
//!    gate is Clifford; the phase-polynomial domain
//!    ([`crate::domains::phase_poly`]) for {X, CX, Swap, Rz-family,
//!    controlled-phase} runs; the dense fallback
//!    ([`crate::domains::dense`]) up to 8 wires; otherwise a sound
//!    [`Verdict::Unknown`] — never a guess.
//!
//! The whole-pipeline entry of [`verify_optimization`] is proven by
//! **transitivity**: when the traced rewrite chain is intact (each
//! boundary's output is the next one's input, ends matching the
//! original and optimized circuits) the composition inherits the join
//! of the per-boundary verdicts; a broken chain — a pass mutating ops
//! while reporting no change — falls back to a direct structural
//! check.
//!
//! Soundness: `Equivalent` and `Inequivalent` are only ever produced
//! by a domain that is *exact* on the gates it accepted (the dense
//! domain is exact up to the documented 1e-6 numerical tolerance).
//! `Unknown` is the only answer allowed to be imprecise, and it is
//! reported, not silently swallowed.

use crate::domains::{channel, clifford, dense, phase_poly};
use qutes_qcirc::{
    optimize_with_trace, remap_gate, segment_ops, segment_ops_causal, CircError, Gate, Interrupt,
    QuantumCircuit, Segmented,
};

/// Outcome of an equivalence check, ordered as a lattice:
/// `Inequivalent > Unknown > Equivalent` under [`Verdict::join`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Proven equivalent (up to global phase) by an exact domain.
    Equivalent,
    /// No applicable domain: soundly undecided, never a guess.
    Unknown,
    /// Proven inequivalent by an exact domain.
    Inequivalent,
}

impl Verdict {
    /// Lattice join: the worse verdict wins.
    pub fn join(self, other: Verdict) -> Verdict {
        use Verdict::*;
        match (self, other) {
            (Inequivalent, _) | (_, Inequivalent) => Inequivalent,
            (Unknown, _) | (_, Unknown) => Unknown,
            _ => Equivalent,
        }
    }

    /// Lowercase display name (`"equivalent"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Equivalent => "equivalent",
            Verdict::Unknown => "unknown",
            Verdict::Inequivalent => "inequivalent",
        }
    }
}

/// One verified component of one run pair.
#[derive(Clone, Debug)]
pub struct SegmentVerdict {
    /// Index of the unitary run (between sync anchors) this component
    /// belongs to.
    pub run: usize,
    /// The component's wires (global indices, sorted).
    pub wires: Vec<usize>,
    /// Which domain decided it (`"clifford"`, `"phase_poly"`,
    /// `"dense"`, or `"none"` for `Unknown`).
    pub domain: &'static str,
    /// The component's verdict.
    pub verdict: Verdict,
}

/// Full result of [`verify_rewrite`].
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Joined verdict over all segments (and the skeleton check).
    pub verdict: Verdict,
    /// Per-component verdicts, in run order.
    pub segments: Vec<SegmentVerdict>,
    /// Human-readable cause of the first non-`Equivalent` fact.
    pub detail: Option<String>,
}

/// Decides whether two gate streams over `n` qubits implement the same
/// channel (each unitary run equal up to global phase, sync operations
/// identical).
///
/// Runs the positional alignment first; if it cannot prove equivalence
/// the causal alignment is tried, and the most favorable verdict wins
/// (each scheme's `Equivalent` is a proof; a scheme's `Inequivalent`
/// may be misalignment — see the module docs).
pub fn verify_rewrite(before: &[Gate], after: &[Gate], n: usize) -> VerifyReport {
    let _span = qutes_obs::span("verify.rewrite");
    let sa = segment_ops(before);
    let sb = segment_ops(after);
    if sa.sync != sb.sync {
        return VerifyReport {
            verdict: Verdict::Inequivalent,
            segments: Vec::new(),
            detail: Some(format!(
                "sync skeletons differ: {} vs {} measure/reset/conditional anchors \
                 (no pass may create, drop or reorder them)",
                sa.sync.len(),
                sb.sync.len()
            )),
        };
    }
    let positional = judge_runs(&sa, &sb, n, true);
    if positional.verdict == Verdict::Equivalent {
        return positional;
    }
    if qutes_obs::is_enabled() {
        qutes_obs::counter_add("verify.rewrite.causal_escalations", 1);
    }
    let causal = judge_runs(
        &segment_ops_causal(before),
        &segment_ops_causal(after),
        n,
        false,
    );
    // Rank Equivalent < Unknown < Inequivalent and keep the better
    // report: proofs win outright, and between two failures the less
    // damning one stands (the worse may be pure misalignment).
    let rank = |v: Verdict| match v {
        Verdict::Equivalent => 0u8,
        Verdict::Unknown => 1,
        Verdict::Inequivalent => 2,
    };
    let best = if rank(causal.verdict) < rank(positional.verdict) {
        causal
    } else {
        positional
    };
    if best.verdict == Verdict::Equivalent {
        return best;
    }
    // Last resort: the alignment-free whole-boundary channel
    // comparison. A pass that removes gates can re-time the causal
    // position of *other* rewritten gates relative to anchors on
    // disjoint wires, so that no run-by-run decomposition of the
    // rewrite exists under either scheme; comparing the two streams as
    // quantum instruments (anchors included, outcome branches
    // enumerated) needs no alignment at all, at dense-domain cost.
    if qutes_obs::is_enabled() {
        qutes_obs::counter_add("verify.rewrite.channel_escalations", 1);
    }
    match channel::instruments_equal(before, after) {
        Some(true) => VerifyReport {
            verdict: Verdict::Equivalent,
            segments: Vec::new(),
            detail: Some(
                "proven by whole-boundary channel comparison (no run alignment exists; \
                 branch operators equal up to per-branch phase)"
                    .to_string(),
            ),
        },
        // The channel domain is exact where it applies, so it may
        // *sharpen* an Unknown into a proof of inequivalence — but a
        // scheme's Inequivalent keeps its more precise per-run detail.
        Some(false) if best.verdict == Verdict::Unknown => VerifyReport {
            verdict: Verdict::Inequivalent,
            segments: Vec::new(),
            detail: Some("whole-boundary channel comparison: branch operators differ".to_string()),
        },
        _ => best,
    }
}

/// Judges every aligned run pair of one segmentation of both sides.
/// `count` gates the per-segment obs counters so the escalation pass
/// does not double-count components.
fn judge_runs(sa: &Segmented, sb: &Segmented, n: usize, count: bool) -> VerifyReport {
    let mut verdict = Verdict::Equivalent;
    let mut segments = Vec::new();
    let mut detail = None;
    for (run_idx, (ra, rb)) in sa.runs.iter().zip(&sb.runs).enumerate() {
        for comp in components(ra, rb, n) {
            let (la, ka) = localize(ra, &comp, n);
            let (lb, _) = localize(rb, &comp, n);
            let k = ka;
            let (domain, v) = decide(&la, &lb, k);
            if count && qutes_obs::is_enabled() {
                qutes_obs::counter_add(segment_counter(domain), 1);
            }
            if v != Verdict::Equivalent && detail.is_none() {
                detail = Some(format!(
                    "run {run_idx}, wires {:?}: {} in the {} domain",
                    comp,
                    v.name(),
                    if domain == "none" {
                        "(no applicable)"
                    } else {
                        domain
                    }
                ));
            }
            verdict = verdict.join(v);
            segments.push(SegmentVerdict {
                run: run_idx,
                wires: comp,
                domain,
                verdict: v,
            });
        }
    }
    VerifyReport {
        verdict,
        segments,
        detail,
    }
}

fn segment_counter(domain: &'static str) -> &'static str {
    match domain {
        "clifford" => "verify.segments.clifford",
        "phase_poly" => "verify.segments.phase_poly",
        "dense" => "verify.segments.dense",
        _ => "verify.segments.unknown",
    }
}

/// Picks the cheapest exact domain that accepts both runs and decides.
fn decide(a: &[Gate], b: &[Gate], k: usize) -> (&'static str, Verdict) {
    let to_verdict = |eq: bool| {
        if eq {
            Verdict::Equivalent
        } else {
            Verdict::Inequivalent
        }
    };
    if let Some(eq) = clifford::runs_equal(a, b, k) {
        return ("clifford", to_verdict(eq));
    }
    if let Some(eq) = phase_poly::runs_equal(a, b, k) {
        return ("phase_poly", to_verdict(eq));
    }
    if let Some(eq) = dense::runs_equal(a, b, k) {
        return ("dense", to_verdict(eq));
    }
    ("none", Verdict::Unknown)
}

/// Connected components of the union support of both runs, each a
/// sorted wire list. Gates with empty support (global phases) join no
/// component — they only move the global phase, which every domain
/// already quotients out.
fn components(a: &[Gate], b: &[Gate], n: usize) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut touched = vec![false; n];
    for g in a.iter().chain(b) {
        let qs = g.qubits();
        for &q in &qs {
            touched[q] = true;
        }
        for w in qs.windows(2) {
            let (ra, rb) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if ra != rb {
                parent[ra] = rb;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (q, &hit) in touched.iter().enumerate() {
        if hit {
            let root = find(&mut parent, q);
            groups.entry(root).or_default().push(q);
        }
    }
    groups.into_values().collect()
}

/// Extracts the gates of `run` supported on `comp` and remaps their
/// wires to `0..comp.len()`. Support-less gates (global phases) are
/// dropped — see [`components`].
fn localize(run: &[Gate], comp: &[usize], n: usize) -> (Vec<Gate>, usize) {
    let mut qmap = vec![usize::MAX; n];
    for (local, &global) in comp.iter().enumerate() {
        qmap[global] = local;
    }
    let gates = run
        .iter()
        .filter(|g| {
            let qs = g.qubits();
            !qs.is_empty() && qs.iter().all(|&q| qmap[q] != usize::MAX)
        })
        .map(|g| remap_gate(g, &qmap, &[]))
        .collect();
    (gates, comp.len())
}

/// One verified optimizer pass boundary.
#[derive(Clone, Debug)]
pub struct BoundaryReport {
    /// Pass name (`"cancel_merge"`, `"fuse_runs"`, `"fuse_multi"`, or
    /// `"pipeline"` for the whole-composition check).
    pub pass: &'static str,
    /// Boundary position in pipeline order.
    pub index: usize,
    /// The rewrite's verification report.
    pub report: VerifyReport,
}

/// Result of [`verify_optimization`].
#[derive(Clone, Debug)]
pub struct OptimizationVerification {
    /// Joined verdict over every boundary.
    pub verdict: Verdict,
    /// Per-boundary reports, ending with the `"pipeline"` composition.
    pub boundaries: Vec<BoundaryReport>,
}

impl OptimizationVerification {
    /// The first boundary whose verdict is not `Equivalent`, if any.
    pub fn first_problem(&self) -> Option<&BoundaryReport> {
        self.boundaries
            .iter()
            .find(|b| b.report.verdict != Verdict::Equivalent)
    }
}

/// Optimizes `circuit` at `level` while tracing pass boundaries, then
/// verifies every recorded rewrite *and* the end-to-end composition.
pub fn verify_optimization(
    circuit: &QuantumCircuit,
    level: u8,
) -> Result<OptimizationVerification, CircError> {
    let _span = qutes_obs::span("verify.optimize");
    let n = circuit.num_qubits();
    let (optimized, _report, trace) = optimize_with_trace(circuit, level, &Interrupt::new())?;
    let mut boundaries: Vec<BoundaryReport> = trace
        .iter()
        .map(|b| BoundaryReport {
            pass: b.pass,
            index: b.index,
            report: verify_rewrite(&b.before, &b.after, n),
        })
        .collect();
    // The whole-pipeline verdict is what `run --verify` ultimately
    // promises the user. With an intact rewrite chain (every recorded
    // boundary's output is the next one's input, ends matching the
    // original and optimized circuits — unchanged iterations are exact
    // identities and need no entries) it follows by transitivity from
    // the per-boundary verdicts; no single run alignment scheme covers
    // cancellation *and* fusion at once, so a direct structural check
    // of the composition would spuriously fail exactly when both kinds
    // of rewrite fired. The direct check remains as the fallback
    // against a pass that mutated ops while reporting no change.
    let chain_ok = if trace.is_empty() {
        circuit.ops() == optimized.ops()
    } else {
        trace[0].before.as_slice() == circuit.ops()
            && trace.windows(2).all(|w| w[0].after == w[1].before)
            && trace
                .last()
                .is_some_and(|b| b.after.as_slice() == optimized.ops())
    };
    let pipeline_report = if chain_ok {
        let joined = boundaries
            .iter()
            .fold(Verdict::Equivalent, |acc, b| acc.join(b.report.verdict));
        VerifyReport {
            verdict: joined,
            segments: Vec::new(),
            detail: Some(if trace.is_empty() {
                "optimizer made no changes".to_string()
            } else {
                format!(
                    "by composition of {} verified pass boundaries (rewrite chain intact)",
                    trace.len()
                )
            }),
        }
    } else {
        verify_rewrite(circuit.ops(), optimized.ops(), n)
    };
    boundaries.push(BoundaryReport {
        pass: "pipeline",
        index: trace.len(),
        report: pipeline_report,
    });
    let verdict = boundaries
        .iter()
        .fold(Verdict::Equivalent, |acc, b| acc.join(b.report.verdict));
    if qutes_obs::is_enabled() {
        qutes_obs::counter_add(
            match verdict {
                Verdict::Equivalent => "verify.equivalent",
                Verdict::Unknown => "verify.unknown",
                Verdict::Inequivalent => "verify.inequivalent",
            },
            1,
        );
    }
    Ok(OptimizationVerification {
        verdict,
        boundaries,
    })
}

/// Per-segment Clifford classification of a whole circuit — the
/// dispatch oracle's circuit-level view. `all_clifford` agrees
/// bit-for-bit with [`qutes_qcirc::circuit_is_clifford`] (debug-
/// asserted); the per-segment counts additionally say *where* the
/// non-Clifford content sits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchClassification {
    /// Total unitary runs (sync anchors + 1).
    pub segments: usize,
    /// Runs whose every gate is in the stabilizer domain.
    pub clifford_segments: usize,
    /// True when every run is Clifford and every sync anchor is too
    /// (a conditional's inner gate may not be).
    pub all_clifford: bool,
}

/// Classifies `circuit` segment by segment for backend dispatch.
pub fn classify_dispatch(circuit: &QuantumCircuit) -> DispatchClassification {
    let seg = segment_ops(circuit.ops());
    let clifford_segments = seg
        .runs
        .iter()
        .filter(|r| r.iter().all(clifford::in_domain))
        .count();
    let all_clifford =
        clifford_segments == seg.runs.len() && seg.sync.iter().all(Gate::is_clifford);
    debug_assert_eq!(
        all_clifford,
        qutes_qcirc::circuit_is_clifford(circuit),
        "segment classifier disagrees with the whole-circuit Clifford bit"
    );
    DispatchClassification {
        segments: seg.runs.len(),
        clifford_segments,
        all_clifford,
    }
}

/// The validator handed to `qutes_qcirc::set_pass_validator`: rejects
/// a rewrite only on a *proven* `Inequivalent` — `Unknown` is sound
/// (the rewrite may be fine; refusing would break legitimate >8-wire
/// dense fusions).
fn optimizer_guard(
    pass: &'static str,
    index: usize,
    before: &[Gate],
    after: &[Gate],
) -> Result<(), String> {
    let n = before
        .iter()
        .chain(after)
        .flat_map(Gate::qubits)
        .max()
        .map_or(0, |q| q + 1);
    let report = verify_rewrite(before, after, n);
    match report.verdict {
        Verdict::Inequivalent => Err(format!(
            "boundary {index}: {}",
            report
                .detail
                .unwrap_or_else(|| "proven inequivalent".to_string())
        )),
        _ => {
            let _ = pass;
            Ok(())
        }
    }
}

/// Installs translation validation inside `qutes_qcirc::optimize` for
/// this process (debug builds only — release builds never consult the
/// validator). Idempotent.
pub fn install_optimizer_guard() {
    qutes_qcirc::set_pass_validator(optimizer_guard);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(c: usize, t: usize) -> Gate {
        Gate::CX {
            control: c,
            target: t,
        }
    }

    #[test]
    fn identical_streams_are_equivalent() {
        let ops = [Gate::H(0), cx(0, 1), Gate::Measure { qubit: 0, clbit: 0 }];
        let r = verify_rewrite(&ops, &ops, 2);
        assert_eq!(r.verdict, Verdict::Equivalent);
    }

    #[test]
    fn hh_cancellation_is_equivalent() {
        let before = [Gate::H(0), Gate::H(0), cx(0, 1)];
        let after = [cx(0, 1)];
        let r = verify_rewrite(&before, &after, 2);
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert!(r.segments.iter().all(|s| s.domain == "clifford"));
    }

    #[test]
    fn dropped_gate_is_inequivalent() {
        let before = [Gate::H(0), cx(0, 1)];
        let after = [cx(0, 1)];
        let r = verify_rewrite(&before, &after, 2);
        assert_eq!(r.verdict, Verdict::Inequivalent);
        assert!(r.detail.is_some());
    }

    #[test]
    fn skeleton_mismatch_is_inequivalent() {
        let before = [Gate::Measure { qubit: 0, clbit: 0 }];
        let r = verify_rewrite(&before, &[], 1);
        assert_eq!(r.verdict, Verdict::Inequivalent);
    }

    #[test]
    fn rz_merge_uses_phase_poly() {
        let before = [
            Gate::RZ {
                target: 0,
                theta: 0.25,
            },
            Gate::RZ {
                target: 0,
                theta: 0.5,
            },
        ];
        let after = [Gate::RZ {
            target: 0,
            theta: 0.75,
        }];
        let r = verify_rewrite(&before, &after, 1);
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert_eq!(r.segments[0].domain, "phase_poly");
    }

    #[test]
    fn fused_unitary_uses_dense() {
        // H·H fused into the identity matrix gate.
        let id = qutes_sim::gates::h().matmul(&qutes_sim::gates::h());
        let before = [Gate::H(0), Gate::H(0)];
        let after = [Gate::Unitary {
            target: 0,
            matrix: id,
        }];
        let r = verify_rewrite(&before, &after, 1);
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert_eq!(r.segments[0].domain, "dense");
    }

    #[test]
    fn disjoint_factors_verify_independently() {
        let before = [Gate::H(0), Gate::T(1), Gate::T(1)];
        let after = [Gate::H(0), Gate::S(1)];
        let r = verify_rewrite(&before, &after, 2);
        assert_eq!(r.verdict, Verdict::Equivalent);
        let domains: Vec<_> = r.segments.iter().map(|s| s.domain).collect();
        assert!(domains.contains(&"clifford"));
        assert!(domains.contains(&"phase_poly"));
    }

    #[test]
    fn optimization_of_bell_pair_verifies() {
        let mut c = QuantumCircuit::with_qubits_and_clbits(2, 2);
        c.h(0).unwrap().h(0).unwrap().h(0).unwrap();
        c.cx(0, 1).unwrap();
        c.measure(0, 0).unwrap();
        for level in 1..=2 {
            let v = verify_optimization(&c, level).unwrap();
            assert_eq!(v.verdict, Verdict::Equivalent, "level {level}");
            assert!(v.boundaries.len() >= 2); // at least one pass + pipeline
        }
    }

    #[test]
    fn classify_dispatch_matches_whole_circuit_bit() {
        let mut c = QuantumCircuit::with_qubits(2);
        c.h(0).unwrap().cx(0, 1).unwrap();
        let d = classify_dispatch(&c);
        assert!(d.all_clifford);
        assert_eq!(d.segments, 1);

        let mut nc = QuantumCircuit::with_qubits(2);
        nc.h(0).unwrap().t(1).unwrap();
        let d = classify_dispatch(&nc);
        assert!(!d.all_clifford);
        assert_eq!(d.clifford_segments, 0);
    }

    #[test]
    fn verdict_join_is_a_lattice() {
        use Verdict::*;
        assert_eq!(Equivalent.join(Unknown), Unknown);
        assert_eq!(Unknown.join(Inequivalent), Inequivalent);
        assert_eq!(Equivalent.join(Equivalent), Equivalent);
    }
}
