//! # qutes-analysis
//!
//! Quantum-aware static analysis for the Qutes language: a lint pass and
//! a static resource estimator that run over the typed AST **without
//! simulating** anything.
//!
//! The analyzer produces span-carrying [`Finding`]s from a fixed
//! [registry](lints::REGISTRY) of lints — quantum dataflow checks
//! (use-after-measurement, aliasing, dirty qubits, unused measurements),
//! classical hygiene checks (unused variables, unreachable code,
//! constant conditions), and notes on every implicit quantum→classical
//! measurement — plus a [`ResourceEstimate`] bounding the qubit count,
//! gate count, circuit depth, and measurement count of the circuit the
//! program would build.
//!
//! ```
//! use qutes_analysis::analyze_source;
//! use qutes_core::LintOptions;
//!
//! let report = analyze_source(
//!     "qubit q = |+>;\nint unused = 3;\nprint q;\n",
//!     &LintOptions::enabled(),
//! )
//! .expect("program parses and type-checks");
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].lint.id, "QL101");
//! assert_eq!(report.resources.qubits, 1);
//! assert!(report.resources.exact);
//! ```

#![deny(missing_docs)]

pub mod domains;
pub mod lints;
pub mod report;
pub mod resources;
pub mod verify;

mod cfg;
mod control;
mod dataflow;

pub use domains::syntactic::program_is_clifford;
pub use lints::{effective_level, lint_by_id, Lint, LintLevel, REGISTRY};
pub use report::{AnalysisReport, Finding};
pub use resources::{estimate, ResourceEstimate};
pub use verify::{
    classify_dispatch, install_optimizer_guard, verify_optimization, verify_rewrite,
    BoundaryReport, DispatchClassification, OptimizationVerification, SegmentVerdict, Verdict,
    VerifyReport,
};

use qutes_core::LintOptions;
use qutes_frontend::ast::Program;
use qutes_frontend::{Diagnostic, Span};

/// A lint hit before level resolution.
#[derive(Clone, Debug)]
pub(crate) struct RawFinding {
    pub(crate) lint: &'static Lint,
    pub(crate) message: String,
    pub(crate) span: Span,
    /// Secondary notes pointing at related spans (e.g. QL001's
    /// collapsing measurement). Rendered beneath the primary diagnostic,
    /// each carrying the primary lint's code.
    pub(crate) notes: Vec<(String, Span)>,
}

/// Analyzes a parsed, type-checked program.
///
/// Findings are filtered through `opts` (allowed lints are dropped,
/// levels resolved per [`effective_level`]) and sorted by source
/// position. The resource estimate is always computed — it does not
/// depend on lint configuration.
pub fn analyze(program: &Program, opts: &LintOptions) -> AnalysisReport {
    let _span = qutes_obs::span("stage.analyze");
    let mut raw = dataflow::run(program);
    raw.extend(control::run(program));
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter_map(|f| {
            let level = effective_level(f.lint, opts);
            (level > LintLevel::Allow).then_some(Finding {
                lint: f.lint,
                level,
                message: f.message,
                span: f.span,
                notes: f.notes,
            })
        })
        .collect();
    findings.sort_by_key(|f| (f.span.start, f.lint.id));
    AnalysisReport {
        findings,
        resources: resources::estimate(program),
    }
}

/// Parses, type-checks, and analyzes `source`.
///
/// Returns the parser's or type checker's diagnostics when the program
/// is not well-formed — the analyzer itself only runs on valid programs.
pub fn analyze_source(source: &str, opts: &LintOptions) -> Result<AnalysisReport, Vec<Diagnostic>> {
    let program = qutes_frontend::parse(source)?;
    let type_errors = {
        let _span = qutes_obs::span("stage.typecheck");
        qutes_core::check_program(&program)
    };
    if !type_errors.is_empty() {
        return Err(type_errors);
    }
    Ok(analyze(&program, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> LintOptions {
        LintOptions::enabled()
    }

    #[test]
    fn findings_are_sorted_by_position() {
        let report = analyze_source("int a = 1;\nint b = 2;\nprint \"neither used\";\n", &opts())
            .expect("parses");
        let spans: Vec<usize> = report.findings.iter().map(|f| f.span.start).collect();
        let mut sorted = spans.clone();
        sorted.sort_unstable();
        assert_eq!(spans, sorted);
        assert_eq!(report.findings.len(), 2);
    }

    #[test]
    fn allows_drop_findings() {
        let mut o = opts();
        o.allows.push("QL101".into());
        let report = analyze_source("int a = 1;\nprint \"x\";\n", &o).expect("parses");
        assert!(report.findings.is_empty());
    }

    #[test]
    fn deny_warnings_promotes_and_denies() {
        let mut o = opts();
        o.deny_warnings = true;
        let report = analyze_source("int a = 1;\nprint \"x\";\n", &o).expect("parses");
        assert_eq!(report.denied().len(), 1);
    }

    #[test]
    fn parse_errors_are_returned_as_diagnostics() {
        assert!(analyze_source("int = ;", &opts()).is_err());
    }

    #[test]
    fn type_errors_are_returned_as_diagnostics() {
        assert!(analyze_source("int x = \"not an int\" * true;\nprint x;\n", &opts()).is_err());
    }
}
