//! Analysis results: findings, the aggregate report, rendering, and the
//! `--lint-json` machine-readable serialization.

use crate::lints::{Lint, LintLevel};
use crate::resources::ResourceEstimate;
use qutes_frontend::{Diagnostic, LineMap, Span};

/// A single lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The lint that fired.
    pub lint: &'static Lint,
    /// Effective level after applying the run's [`qutes_core::LintOptions`].
    pub level: LintLevel,
    /// Human-readable message.
    pub message: String,
    /// Source span the finding points at.
    pub span: Span,
    /// Secondary notes pointing at related spans (e.g. QL001's
    /// "the collapsing measurement is here"). Each renders as a
    /// `note[<lint id>]` diagnostic beneath the primary, keeping the
    /// machine-readable code at every severity — including when
    /// `--deny-warnings` promotes the primary to an error.
    pub notes: Vec<(String, Span)>,
}

impl Finding {
    /// Converts into a shared [`Diagnostic`] (same renderer as parser
    /// and type errors), carrying the lint id as the code. Notes are
    /// not included — use [`Finding::render`] for the full output.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let d = match self.level {
            LintLevel::Deny => Diagnostic::error(self.message.clone(), self.span),
            LintLevel::Warn => Diagnostic::warning(self.message.clone(), self.span),
            _ => Diagnostic::note(self.message.clone(), self.span),
        };
        d.with_code(self.lint.id)
    }

    /// Renders with source context via the shared diagnostic renderer,
    /// followed by the attached notes (each tagged with the lint code).
    pub fn render(&self, source: &str) -> String {
        let mut out = self.to_diagnostic().render(source);
        for (message, span) in &self.notes {
            out.push_str(
                &Diagnostic::note(message.clone(), *span)
                    .with_code(self.lint.id)
                    .render(source),
            );
        }
        out
    }
}

/// Everything one [`crate::analyze`] call produced.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// Findings at level Note or above, in source order.
    pub findings: Vec<Finding>,
    /// Static bounds on the circuit the program would build.
    pub resources: ResourceEstimate,
}

impl AnalysisReport {
    /// Findings at [`LintLevel::Deny`]; non-empty means execution entry
    /// points refuse to run the program.
    pub fn denied(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.level == LintLevel::Deny)
            .collect()
    }

    /// True when no finding is at warn level or above.
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| f.level < LintLevel::Warn)
    }

    /// Renders every finding plus a one-line resource summary.
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render(source));
        }
        out.push_str(&self.resources.summary());
        out.push('\n');
        out
    }

    /// Serializes the report as JSON (the `--lint-json` output).
    ///
    /// Schema (documented in `docs/analysis.md`):
    ///
    /// ```text
    /// {
    ///   "findings": [
    ///     { "id": "QL101", "name": "unused-variable", "level": "warn",
    ///       "message": "...", "span": { "start": 6, "end": 7,
    ///       "line": 1, "col": 7 },
    ///       "notes": [ { "message": "...", "span": { ... } }, ... ] }, ...
    ///   ],
    ///   "resources": { "qubits": 2, "gates": 3, "depth": 3,
    ///                  "measurements": 2, "exact": true,
    ///                  "clifford_only": true, "notes": ["..."] }
    /// }
    /// ```
    pub fn to_json(&self, source: &str) -> String {
        let map = LineMap::new(source);
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let (line, col) = map.position(f.span.start);
            if i > 0 {
                out.push(',');
            }
            let notes = f
                .notes
                .iter()
                .map(|(message, span)| {
                    let (nline, ncol) = map.position(span.start);
                    format!(
                        "{{ \"message\": {}, \"span\": {{ \"start\": {}, \"end\": {}, \
                         \"line\": {nline}, \"col\": {ncol} }} }}",
                        json_str(message),
                        span.start,
                        span.end,
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n    {{ \"id\": {}, \"name\": {}, \"level\": {}, \"message\": {}, \
                 \"span\": {{ \"start\": {}, \"end\": {}, \"line\": {line}, \"col\": {col} }}, \
                 \"notes\": [{notes}] }}",
                json_str(f.lint.id),
                json_str(f.lint.name),
                json_str(level_str(f.level)),
                json_str(&f.message),
                f.span.start,
                f.span.end,
            ));
        }
        if self.findings.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        let r = &self.resources;
        out.push_str(&format!(
            "  \"resources\": {{ \"qubits\": {}, \"gates\": {}, \"depth\": {}, \
             \"measurements\": {}, \"exact\": {}, \"clifford_only\": {}, \
             \"notes\": [{}] }}\n}}\n",
            r.qubits,
            r.gates,
            r.depth,
            r.measurements,
            r.exact,
            r.clifford_only,
            r.notes
                .iter()
                .map(|n| json_str(n))
                .collect::<Vec<_>>()
                .join(", "),
        ));
        out
    }
}

fn level_str(level: LintLevel) -> &'static str {
    match level {
        LintLevel::Allow => "allow",
        LintLevel::Note => "note",
        LintLevel::Warn => "warn",
        LintLevel::Deny => "deny",
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::UNUSED_VARIABLE;

    fn finding() -> Finding {
        Finding {
            lint: &UNUSED_VARIABLE,
            level: LintLevel::Warn,
            message: "unused variable 'x'".into(),
            span: Span::new(4, 5),
            notes: Vec::new(),
        }
    }

    #[test]
    fn render_uses_the_shared_diagnostic_renderer() {
        let src = "int x = 1;\n";
        let rendered = finding().render(src);
        assert!(rendered.starts_with("warning[QL101]: unused variable 'x' at 1:5"));
        assert!(rendered.contains("int x = 1;"));
    }

    #[test]
    fn notes_render_with_the_primary_lint_code_at_every_severity() {
        let src = "int x = 1;\n";
        let mut f = finding();
        f.notes.push(("declared here".into(), Span::new(0, 3)));
        let rendered = f.render(src);
        assert!(rendered.contains("note[QL101]: declared here at 1:1"));
        // Deny-promotion must not strip the code from the note.
        f.level = LintLevel::Deny;
        let rendered = f.render(src);
        assert!(rendered.starts_with("error[QL101]:"));
        assert!(rendered.contains("note[QL101]: declared here at 1:1"));
    }

    #[test]
    fn json_serializes_notes() {
        let src = "int x = 1;\n";
        let mut f = finding();
        f.notes.push(("declared here".into(), Span::new(0, 3)));
        let report = AnalysisReport {
            findings: vec![f],
            resources: ResourceEstimate::default(),
        };
        let json = report.to_json(src);
        assert!(json.contains("\"notes\": [{ \"message\": \"declared here\""));
        assert!(json.contains("\"line\": 1, \"col\": 1"));
    }

    #[test]
    fn json_contains_span_coordinates() {
        let src = "int x = 1;\n";
        let report = AnalysisReport {
            findings: vec![finding()],
            resources: ResourceEstimate::default(),
        };
        let json = report.to_json(src);
        assert!(json.contains("\"id\": \"QL101\""));
        assert!(json.contains("\"line\": 1, \"col\": 5"));
        assert!(json.contains("\"resources\""));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn denied_filters_by_level() {
        let mut report = AnalysisReport {
            findings: vec![finding()],
            resources: ResourceEstimate::default(),
        };
        assert!(report.denied().is_empty());
        assert!(!report.is_clean());
        report.findings[0].level = LintLevel::Deny;
        assert_eq!(report.denied().len(), 1);
        report.findings[0].level = LintLevel::Note;
        assert!(report.is_clean());
    }
}
