//! Quantum-aware dataflow lints.
//!
//! A single scoped walk over the typed AST tracks, per variable: its
//! declared type, whether it has been read, whether its declaration
//! captured a measurement result, and whether it escapes the analysis'
//! view (is returned, passed by reference to a user function, or
//! aliased). The walk directly produces the flow-insensitive lints:
//! - **QL002 quantum-alias** — binding an existing quantum variable (or
//!   an element of one) to a second name; both names share qubits.
//! - **QL003 dirty-qubits** — a quantum variable that is operated on but
//!   never measured and never escapes.
//! - **QL004 unused-measurement** — a variable initialised from a
//!   measurement whose result is never read.
//! - **QL101 unused-variable** — any other never-read variable
//!   (`_`-prefixed names and parameters are exempt).
//! - **QL201 implicit-measurement** — sites where the runtime measures a
//!   quantum value as a side effect of a classical context (assignment
//!   to a classical type, conditions, comparisons, classical casts).
//!   `print` is exempt: printing a quantum value is the idiomatic way to
//!   observe it.
//!
//! The flow-*sensitive* lint — **QL001 use-after-measurement**, a
//! quantum operation (gate statement, quantum arithmetic, cyclic shift,
//! Grover search target) applied to a variable after an explicit
//! `measure` collapsed it — is not decided here. The walk records every
//! measure, quantum use, whole-variable reassignment and user-function
//! call as an event stream bracketed by control-flow markers, and
//! [`crate::cfg`] rebuilds a basic-block CFG from that stream and runs
//! an interprocedural must-measured fixpoint over it (meet =
//! intersection, function summaries at call sites). A variable counts
//! as measured only when *every* path measured it, and a measure inside
//! a callee propagates to plain-variable arguments at the call site.

use crate::cfg::{self, Ev, VarId};
use crate::lints::{self, Lint};
use crate::RawFinding;
use qutes_core::types::measured;
use qutes_frontend::ast::*;
use qutes_frontend::Span;
use std::collections::HashMap;

/// Runs the dataflow lints over a whole program.
pub(crate) fn run(program: &Program) -> Vec<RawFinding> {
    let mut pass = Pass::new(program);
    // Top-level statements first: their declarations become the globals
    // visible inside function bodies.
    pass.push_scope();
    for item in &program.items {
        if let Item::Statement(s) = item {
            pass.walk_stmt(s);
        }
    }
    let toplevel = cfg::Unit {
        name: String::new(),
        params: Vec::new(),
        events: std::mem::take(&mut pass.events),
    };
    // Function bodies see only the globals plus their parameters. Each
    // body becomes its own analysis unit for the CFG phase.
    let mut funcs = Vec::new();
    for item in &program.items {
        if let Item::Function(f) = item {
            pass.push_scope();
            let mut params = Vec::new();
            for p in &f.params {
                params.push(pass.declare(&p.name, p.ty.clone(), p.span, true));
            }
            pass.walk_stmts(&f.body.stmts);
            pass.pop_scope();
            funcs.push(cfg::Unit {
                name: f.name.clone(),
                params,
                events: std::mem::take(&mut pass.events),
            });
        }
    }
    pass.pop_scope();
    let mut findings = pass.findings;
    findings.extend(cfg::must_measured_findings(&toplevel, &funcs));
    findings
}

/// Everything the pass knows about one binding.
#[derive(Clone, Debug)]
struct VarInfo {
    name: String,
    ty: Type,
    decl_span: Span,
    /// Program-wide unique identity, carried into the CFG event stream.
    id: VarId,
    used: bool,
    /// Collapsed by *any* observation — explicit measure, `print`, or an
    /// implicit-measurement context. Satisfies QL003 without triggering
    /// QL001 (which stays explicit-measure-only to avoid false alarms).
    observed: bool,
    is_param: bool,
    /// Declaration captured a measurement result (explicit or implicit).
    from_measurement: bool,
    /// Returned, passed by reference, or aliased — its later life is
    /// outside this pass' view, so "never measured" cannot be concluded.
    escapes: bool,
}

struct Pass<'p> {
    scopes: Vec<Vec<VarInfo>>,
    /// User-declared function name → return type.
    functions: HashMap<&'p str, &'p Type>,
    findings: Vec<RawFinding>,
    /// Event stream for the CFG phase; drained per analysis unit.
    events: Vec<Ev>,
    next_id: VarId,
}

impl<'p> Pass<'p> {
    fn new(program: &'p Program) -> Self {
        let functions = program
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Function(f) => Some((f.name.as_str(), &f.ret_type)),
                _ => None,
            })
            .collect();
        Pass {
            scopes: Vec::new(),
            functions,
            findings: Vec::new(),
            events: Vec::new(),
            next_id: 0,
        }
    }

    fn report(&mut self, lint: &'static Lint, message: String, span: Span) {
        self.findings.push(RawFinding {
            lint,
            message,
            span,
            notes: Vec::new(),
        });
    }

    // ---- scope management -------------------------------------------------

    fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Pops a scope and emits the end-of-life lints for its bindings.
    fn pop_scope(&mut self) {
        let Some(scope) = self.scopes.pop() else {
            return;
        };
        for v in scope {
            if v.name.starts_with('_') || v.is_param {
                continue;
            }
            if !v.used {
                if v.from_measurement {
                    self.report(
                        &lints::UNUSED_MEASUREMENT,
                        format!(
                            "the measurement stored in '{}' is never used; the collapse has \
                             no observable effect",
                            v.name
                        ),
                        v.decl_span,
                    );
                } else {
                    self.report(
                        &lints::UNUSED_VARIABLE,
                        format!("unused variable '{}'", v.name),
                        v.decl_span,
                    );
                }
            } else if v.ty.is_quantum() && !v.observed && !v.escapes {
                self.report(
                    &lints::DIRTY_QUBITS,
                    format!(
                        "quantum variable '{}' is operated on but never measured; its qubits \
                         stay allocated and unobserved",
                        v.name
                    ),
                    v.decl_span,
                );
            }
        }
    }

    /// Declares a binding in the innermost scope and returns its
    /// program-wide [`VarId`].
    fn declare(&mut self, name: &str, ty: Type, decl_span: Span, is_param: bool) -> VarId {
        let id = self.next_id;
        self.next_id += 1;
        if let Some(scope) = self.scopes.last_mut() {
            scope.push(VarInfo {
                name: name.to_string(),
                ty,
                decl_span,
                id,
                used: false,
                observed: false,
                is_param,
                from_measurement: false,
                escapes: is_param,
            });
        }
        id
    }

    fn lookup(&self, name: &str) -> Option<&VarInfo> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|v| v.name == name))
    }

    fn lookup_mut(&mut self, name: &str) -> Option<&mut VarInfo> {
        self.scopes
            .iter_mut()
            .rev()
            .find_map(|s| s.iter_mut().rev().find(|v| v.name == name))
    }

    fn mark_used(&mut self, name: &str) {
        if let Some(v) = self.lookup_mut(name) {
            v.used = true;
        }
    }

    fn mark_escapes(&mut self, name: &str) {
        if let Some(v) = self.lookup_mut(name) {
            v.escapes = true;
        }
    }

    fn var_type(&self, name: &str) -> Option<Type> {
        self.lookup(name).map(|v| v.ty.clone())
    }

    // ---- lint trigger helpers ---------------------------------------------

    /// Innermost variable an lvalue-ish expression resolves to.
    fn root_var(e: &Expr) -> Option<&str> {
        match &e.kind {
            ExprKind::Var(n) => Some(n),
            ExprKind::Index(b, _) => Self::root_var(b),
            ExprKind::MeasureExpr(inner) => Self::root_var(inner),
            _ => None,
        }
    }

    /// Records a quantum operation touching `e` for the CFG phase, which
    /// decides QL001 from the must-measured fixpoint.
    fn check_quantum_use(&mut self, e: &Expr) {
        let Some(name) = Self::root_var(e) else {
            return;
        };
        let Some(v) = self.lookup(name) else { return };
        let ev = Ev::Use {
            var: v.id,
            name: v.name.clone(),
            span: e.span,
        };
        self.events.push(ev);
    }

    /// Marks the root variable of an explicitly measured expression and
    /// records the collapse for the CFG phase.
    fn mark_measured(&mut self, e: &Expr, measure_span: Span) {
        if let Some(name) = Self::root_var(e) {
            let name = name.to_string();
            if let Some(v) = self.lookup_mut(&name) {
                v.used = true;
                v.observed = true;
                let var = v.id;
                self.events.push(Ev::Measure {
                    var,
                    span: measure_span,
                });
            }
        }
    }

    /// QL002: `init` aliases an existing quantum value.
    fn check_alias(&mut self, new_name: &str, target_ty: &Type, init: &Expr) {
        if !target_ty.is_quantum() {
            return;
        }
        let source = match &init.kind {
            ExprKind::Var(n) => Some((n.clone(), false)),
            ExprKind::Index(b, _) => Self::root_var(b).map(|n| (n.to_string(), true)),
            _ => None,
        };
        let Some((src, is_element)) = source else {
            return;
        };
        let Some(src_ty) = self.var_type(&src) else {
            return;
        };
        if !src_ty.is_quantum() {
            return;
        }
        let what = if is_element {
            format!("a qubit of '{src}'")
        } else {
            format!("the qubits of '{src}'")
        };
        self.report(
            &lints::QUANTUM_ALIAS,
            format!(
                "'{new_name}' aliases {what}; quantum state cannot be cloned, so both names \
                 share the same qubits and operations through one affect the other"
            ),
            init.span,
        );
        // The aliased qubits may be measured through the new name, so
        // "never measured" can no longer be concluded for the source.
        self.mark_escapes(&src);
    }

    /// QL201 at `e`, describing the implicitly measured `ty`. The root
    /// variable counts as observed afterwards (satisfies QL003).
    fn implicit_measure(&mut self, e: &Expr, ty: &Type, context: &str) {
        self.report(
            &lints::IMPLICIT_MEASUREMENT,
            format!("this {ty} value is implicitly measured {context}; its state collapses"),
            e.span,
        );
        self.mark_observed(e);
    }

    /// Marks the root variable of `e` as observed (collapsed somehow).
    fn mark_observed(&mut self, e: &Expr) {
        if let Some(name) = Self::root_var(e) {
            let name = name.to_string();
            if let Some(v) = self.lookup_mut(&name) {
                v.observed = true;
            }
        }
    }

    /// Best-effort static type of an expression (None when unknown).
    fn expr_type(&self, e: &Expr) -> Option<Type> {
        Some(match &e.kind {
            ExprKind::Int(_) => Type::Int,
            ExprKind::Float(_) | ExprKind::Pi => Type::Float,
            ExprKind::Bool(_) => Type::Bool,
            ExprKind::Str(_) => Type::String,
            ExprKind::Quint(_) => Type::Quint,
            ExprKind::Qustring(_) => Type::Qustring,
            ExprKind::Ket(_) => Type::Qubit,
            ExprKind::QuantumArray(_) => Type::Quint,
            ExprKind::Array(items) => {
                let elem = items.first().and_then(|i| self.expr_type(i))?;
                Type::Array(Box::new(elem))
            }
            ExprKind::Var(n) => self.var_type(n)?,
            ExprKind::Index(b, _) => match self.expr_type(b)? {
                Type::Array(t) => *t,
                Type::Qubit | Type::Quint | Type::Qustring => Type::Qubit,
                Type::String => Type::String,
                _ => return None,
            },
            ExprKind::Unary(UnOp::Not, _) => Type::Bool,
            ExprKind::Unary(UnOp::Neg, inner) => self.expr_type(inner)?,
            ExprKind::Binary(op, l, r) => match op {
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
                | BinOp::In => Type::Bool,
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    let lt = self.expr_type(l);
                    let rt = self.expr_type(r);
                    if lt == Some(Type::Quint) || rt == Some(Type::Quint) {
                        Type::Quint
                    } else {
                        lt?
                    }
                }
                BinOp::Shl | BinOp::Shr => self.expr_type(l)?,
                BinOp::Div | BinOp::Mod => return None,
            },
            ExprKind::Call(name, _) => match name.as_str() {
                "len" | "width" | "qmin" | "qmax" | "int" => Type::Int,
                "float" => Type::Float,
                "bool" => Type::Bool,
                "str" => Type::String,
                "range" => Type::Array(Box::new(Type::Int)),
                "rotl" | "rotr" => Type::Void,
                user => (*self.functions.get(user)?).clone(),
            },
            ExprKind::MeasureExpr(inner) => {
                let t = self.expr_type(inner)?;
                measured(&t)?
            }
        })
    }

    fn is_quantum_expr(&self, e: &Expr) -> bool {
        self.expr_type(e).is_some_and(|t| t.is_quantum())
    }

    // ---- walkers ----------------------------------------------------------

    fn walk_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.walk_stmt(s);
        }
    }

    fn walk_block(&mut self, b: &Block) {
        self.push_scope();
        self.walk_stmts(&b.stmts);
        self.pop_scope();
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl {
                ty,
                name,
                init,
                span,
            } => {
                let mut from_measurement = false;
                if let Some(e) = init {
                    self.walk_expr(e);
                    self.check_alias(name, ty, e);
                    let is_explicit_measure = matches!(e.kind, ExprKind::MeasureExpr(_));
                    if is_explicit_measure {
                        from_measurement = true;
                    } else if ty.is_classical() && self.is_quantum_expr(e) {
                        from_measurement = true;
                        let et = self.expr_type(e).unwrap_or(Type::Qubit);
                        self.implicit_measure(
                            e,
                            &et,
                            &format!("when assigned to the {ty} variable '{name}'"),
                        );
                    }
                }
                self.declare(name, ty.clone(), *span, false);
                if let Some(v) = self.lookup_mut(name) {
                    v.from_measurement = from_measurement;
                }
            }
            Stmt::Assign {
                target, op, value, ..
            } => {
                self.walk_expr(value);
                let name = match target {
                    LValue::Name(n) => n.clone(),
                    LValue::Index(n, idx) => {
                        let idx = idx.clone();
                        self.walk_expr(&idx);
                        // Writing an element reads the array binding.
                        self.mark_used(n);
                        n.clone()
                    }
                };
                let target_ty = self.var_type(&name);
                let target_quantum = target_ty.as_ref().is_some_and(|t| t.is_quantum());
                match op {
                    AssignOp::Set => {
                        if let (Some(ty), LValue::Name(_)) = (&target_ty, target) {
                            self.check_alias(&name, ty, value);
                            if ty.is_classical()
                                && self.is_quantum_expr(value)
                                && !matches!(value.kind, ExprKind::MeasureExpr(_))
                            {
                                let ty = ty.clone();
                                let et = self.expr_type(value).unwrap_or(Type::Qubit);
                                self.implicit_measure(
                                    value,
                                    &et,
                                    &format!("when assigned to the {ty} variable '{name}'"),
                                );
                            }
                        }
                        // A fresh value replaces the measured one.
                        if let LValue::Name(_) = target {
                            if let Some(v) = self.lookup(&name) {
                                let var = v.id;
                                self.events.push(Ev::Reset { var });
                            }
                        }
                    }
                    AssignOp::Add | AssignOp::Sub | AssignOp::Shl | AssignOp::Shr => {
                        // Compound assignment reads the target.
                        self.mark_used(&name);
                        if target_quantum {
                            let target_expr = Expr::new(ExprKind::Var(name.clone()), s.span());
                            self.check_quantum_use(&target_expr);
                            if matches!(op, AssignOp::Add | AssignOp::Sub)
                                && self.is_quantum_expr(value)
                            {
                                self.check_quantum_use(value);
                            }
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                self.walk_expr(cond);
                if let Some(t) = self.expr_type(cond) {
                    if t.is_quantum() {
                        self.implicit_measure(cond, &t, "by this condition");
                    }
                }
                self.events.push(Ev::BranchStart {
                    has_else: else_block.is_some(),
                });
                self.events.push(Ev::ArmStart);
                self.walk_block(then_block);
                self.events.push(Ev::ArmEnd);
                if let Some(eb) = else_block {
                    self.events.push(Ev::ArmStart);
                    self.walk_block(eb);
                    self.events.push(Ev::ArmEnd);
                }
                self.events.push(Ev::BranchEnd);
            }
            Stmt::While { cond, body, .. } => {
                // The condition re-evaluates every iteration: its events
                // belong to the loop header, not the pre-loop block.
                self.events.push(Ev::LoopStart);
                self.walk_expr(cond);
                if let Some(t) = self.expr_type(cond) {
                    if t.is_quantum() {
                        self.implicit_measure(cond, &t, "by this condition");
                    }
                }
                self.events.push(Ev::BodyStart);
                self.walk_block(body);
                self.events.push(Ev::LoopEnd);
            }
            Stmt::Foreach {
                var,
                iterable,
                body,
                ..
            } => {
                // The iterable is evaluated once, before the loop.
                self.walk_expr(iterable);
                let elem_ty = match self.expr_type(iterable) {
                    Some(Type::Array(t)) => *t,
                    Some(Type::Qustring) => Type::Qubit,
                    _ => Type::Int,
                };
                self.events.push(Ev::LoopStart);
                self.events.push(Ev::BodyStart);
                self.push_scope();
                self.declare(var, elem_ty, iterable.span, false);
                self.walk_stmts(&body.stmts);
                self.pop_scope();
                self.events.push(Ev::LoopEnd);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    self.walk_expr(e);
                    if let Some(n) = Self::root_var(e) {
                        let n = n.to_string();
                        self.mark_escapes(&n);
                    }
                }
                self.events.push(Ev::Ret);
            }
            Stmt::Print { value, .. } => {
                // Printing a quantum value measures it, but that is the
                // idiomatic way to observe a result — no QL201 here. It
                // does satisfy QL003's "never measured", though.
                self.walk_expr(value);
                if self.is_quantum_expr(value) {
                    self.mark_observed(value);
                }
            }
            Stmt::Expr { expr, .. } => self.walk_expr(expr),
            Stmt::Gate { gate, args, .. } => {
                // All operands are quantum uses; for `phase` the trailing
                // argument is the classical angle.
                let operands = match gate {
                    GateKind::Phase => &args[..args.len().min(1)],
                    _ => &args[..],
                };
                for a in args {
                    self.walk_expr(a);
                }
                for a in operands {
                    self.check_quantum_use(a);
                }
            }
            Stmt::Measure { target, span } => {
                self.walk_expr(target);
                self.mark_measured(target, *span);
            }
            Stmt::Barrier { .. } => {}
            Stmt::Block(b) => self.walk_block(b),
        }
    }

    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Var(n) => {
                let n = n.clone();
                self.mark_used(&n);
            }
            ExprKind::Index(b, i) => {
                self.walk_expr(b);
                self.walk_expr(i);
            }
            ExprKind::Unary(_, inner) => self.walk_expr(inner),
            ExprKind::Binary(op, l, r) => {
                self.walk_expr(l);
                self.walk_expr(r);
                match op {
                    // Quantum arithmetic / shifts operate on live state.
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl | BinOp::Shr => {
                        for side in [l, r] {
                            if self.is_quantum_expr(side) {
                                self.check_quantum_use(side);
                            }
                        }
                    }
                    // `pattern in haystack` runs Grover on the haystack
                    // and implicitly measures a quantum pattern.
                    BinOp::In => {
                        if self.is_quantum_expr(r) {
                            self.check_quantum_use(r);
                        }
                        if let Some(t) = self.expr_type(l) {
                            if t.is_quantum() {
                                self.implicit_measure(l, &t, "when used as an 'in' search pattern");
                            }
                        }
                    }
                    // Classical-only operators auto-measure quantum
                    // operands.
                    BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
                    | BinOp::Div
                    | BinOp::Mod
                    | BinOp::And
                    | BinOp::Or => {
                        let op = *op;
                        for side in [l, r] {
                            if let Some(t) = self.expr_type(side) {
                                if t.is_quantum() {
                                    self.implicit_measure(
                                        side,
                                        &t,
                                        &format!("by the classical '{op}' operator"),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            ExprKind::Call(name, args) => {
                for a in args {
                    self.walk_expr(a);
                }
                match name.as_str() {
                    "int" | "float" | "bool" | "str" => {
                        if let Some(a) = args.first() {
                            if let Some(t) = self.expr_type(a) {
                                if t.is_quantum() && !matches!(a.kind, ExprKind::MeasureExpr(_)) {
                                    let name = name.clone();
                                    self.implicit_measure(a, &t, &format!("by the {name}() cast"));
                                }
                            }
                        }
                    }
                    "rotl" | "rotr" => {
                        if let Some(a) = args.first() {
                            self.check_quantum_use(a);
                        }
                    }
                    user if self.functions.contains_key(user) => {
                        // Plain-variable arguments bind by reference: the
                        // callee may measure or transform them. The call
                        // event lets the CFG phase apply the callee's
                        // must-measured summary to these arguments.
                        let mut bound = Vec::with_capacity(args.len());
                        for a in args {
                            if let ExprKind::Var(n) = &a.kind {
                                let n = n.clone();
                                self.mark_escapes(&n);
                                bound.push(self.lookup(&n).map(|v| v.id));
                            } else {
                                bound.push(None);
                            }
                        }
                        self.events.push(Ev::Call {
                            callee: user.to_string(),
                            args: bound,
                        });
                    }
                    _ => {}
                }
            }
            ExprKind::MeasureExpr(inner) => {
                self.walk_expr(inner);
                self.mark_measured(inner, e.span);
            }
            _ => {
                // Literals: walk nested array elements.
                if let ExprKind::Array(items) | ExprKind::QuantumArray(items) = &e.kind {
                    for i in items {
                        self.walk_expr(i);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qutes_frontend::parse;

    fn ids(src: &str) -> Vec<&'static str> {
        let program = parse(src).expect("test program parses");
        let mut found: Vec<&'static str> = run(&program).iter().map(|f| f.lint.id).collect();
        found.sort_unstable();
        found
    }

    #[test]
    fn use_after_measurement_fires_on_gate() {
        let src = "qubit q = |+>;\nmeasure q;\nhadamard q;\nprint q;\n";
        assert!(ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn reassignment_clears_measured_state() {
        let src = "qubit q = |+>;\nmeasure q;\nq = |0>;\nhadamard q;\nprint q;\n";
        assert!(!ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn measure_in_one_branch_only_does_not_flag() {
        let src = "qubit q = |+>;\nbool c = false;\nif (c) {\n  measure q;\n} else {\n}\nhadamard q;\nprint q;\n";
        assert!(!ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn measure_in_both_branches_flags() {
        let src = "qubit q = |+>;\nbool c = false;\nif (c) {\n  measure q;\n} else {\n  measure q;\n}\nhadamard q;\nprint q;\n";
        assert!(ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn alias_fires_on_quantum_var_init() {
        let src = "qubit a = |+>;\nqubit b = a;\nprint a;\nprint b;\n";
        assert!(ids(src).contains(&"QL002"), "{:?}", ids(src));
    }

    #[test]
    fn unused_variable_and_measurement() {
        let found = ids("int x = 1;\nqubit q = |+>;\nbool b = measure q;\nprint \"done\";\n");
        assert!(found.contains(&"QL101"), "{:?}", found);
        assert!(found.contains(&"QL004"), "{:?}", found);
    }

    #[test]
    fn underscore_prefix_silences_unused() {
        let found = ids("int _scratch = 1;\nprint \"done\";\n");
        assert!(!found.contains(&"QL101"), "{:?}", found);
    }

    #[test]
    fn dirty_qubits_is_noted_but_not_for_escaping_vars() {
        let noisy = ids("qubit q = |+>;\nhadamard q;\n");
        assert!(noisy.contains(&"QL003"), "{:?}", noisy);
        let returned = ids(
            "qubit make() {\n  qubit q = |+>;\n  hadamard q;\n  return q;\n}\nqubit r = make();\nprint r;\n",
        );
        assert!(!returned.contains(&"QL003"), "{:?}", returned);
    }

    #[test]
    fn implicit_measurement_noted_on_lossy_decl() {
        let found = ids("qubit q = |+>;\nbool b = q;\nprint b;\n");
        assert!(found.contains(&"QL201"), "{:?}", found);
        // The explicit form is silent.
        let explicit = ids("qubit q = |+>;\nbool b = measure q;\nprint b;\n");
        assert!(!explicit.contains(&"QL201"), "{:?}", explicit);
    }

    #[test]
    fn print_is_not_an_implicit_measurement_site() {
        let found = ids("qubit q = |+>;\nhadamard q;\nprint q;\n");
        assert!(!found.contains(&"QL201"), "{:?}", found);
    }

    #[test]
    fn params_are_exempt_from_unused() {
        let found = ids("int id(int x) {\n  return 7;\n}\nprint id(3);\n");
        assert!(!found.contains(&"QL101"), "{:?}", found);
    }

    #[test]
    fn ql001_carries_a_note_at_the_collapsing_measure() {
        let src = "qubit q = |+>;\nmeasure q;\nhadamard q;\nprint q;\n";
        let program = parse(src).expect("parses");
        let findings = run(&program);
        let f = findings
            .iter()
            .find(|f| f.lint.id == "QL001")
            .expect("QL001 fires");
        assert_eq!(f.notes.len(), 1);
        assert_eq!(f.notes[0].0, "the collapsing measurement is here");
        // The note points at the `measure q;` statement on line 2.
        let measure_at = src.find("measure").expect("source has a measure");
        assert_eq!(f.notes[0].1.start, measure_at);
    }

    #[test]
    fn callee_measure_propagates_to_the_call_site() {
        // `collapse` definitely measures its parameter on every path, so
        // the gate after the call operates on collapsed state.
        let src = "void collapse(qubit p) {\n  measure p;\n}\n\
                   qubit q = |+>;\ncollapse(q);\nhadamard q;\nprint q;\n";
        assert!(ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn callee_measuring_on_one_path_does_not_propagate() {
        let src = "void maybe(qubit p, bool c) {\n  if (c) {\n    measure p;\n  }\n}\n\
                   qubit q = |+>;\nmaybe(q, false);\nhadamard q;\nprint q;\n";
        assert!(!ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn callee_that_reprepares_after_measuring_does_not_propagate() {
        let src = "void recycle(qubit p) {\n  measure p;\n  p = |0>;\n}\n\
                   qubit q = |+>;\nrecycle(q);\nhadamard q;\nprint q;\n";
        assert!(!ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn early_return_path_does_not_mask_the_other_arms_measure() {
        // Every path *reaching* the gate measured p: the then-arm
        // returns early. The old snapshot-based merge missed this.
        let src = "void f(qubit p, bool c) {\n  if (c) {\n    return;\n  } else {\n    measure p;\n  }\n  hadamard p;\n}\nqubit q = |+>;\nf(q, false);\nprint q;\n";
        assert!(ids(src).contains(&"QL001"), "{:?}", ids(src));
    }
}
