//! Quantum-aware dataflow lints.
//!
//! A single scoped walk over the typed AST tracks, per variable: its
//! declared type, whether it has been read, whether an **explicit**
//! `measure` has collapsed it, whether its declaration captured a
//! measurement result, and whether it escapes the analysis' view (is
//! returned, passed by reference to a user function, or aliased).
//!
//! The walk produces:
//! - **QL001 use-after-measurement** — a quantum operation (gate
//!   statement, quantum arithmetic, cyclic shift, Grover search target)
//!   applied to a variable after an explicit `measure` collapsed it.
//! - **QL002 quantum-alias** — binding an existing quantum variable (or
//!   an element of one) to a second name; both names share qubits.
//! - **QL003 dirty-qubits** — a quantum variable that is operated on but
//!   never measured and never escapes.
//! - **QL004 unused-measurement** — a variable initialised from a
//!   measurement whose result is never read.
//! - **QL101 unused-variable** — any other never-read variable
//!   (`_`-prefixed names and parameters are exempt).
//! - **QL201 implicit-measurement** — sites where the runtime measures a
//!   quantum value as a side effect of a classical context (assignment
//!   to a classical type, conditions, comparisons, classical casts).
//!   `print` is exempt: printing a quantum value is the idiomatic way to
//!   observe it.
//!
//! Branches merge conservatively: a variable counts as *measured* only
//! when every path measured it (must-analysis), and as *used* when any
//! path read it (may-analysis). Loop bodies are walked once and the
//! measured-state changes they make are reverted, so a measure late in a
//! loop body never flags uses earlier in the same body.

use crate::lints::{self, Lint};
use crate::RawFinding;
use qutes_core::types::measured;
use qutes_frontend::ast::*;
use qutes_frontend::Span;
use std::collections::HashMap;

/// Runs the dataflow lints over a whole program.
pub(crate) fn run(program: &Program) -> Vec<RawFinding> {
    let mut pass = Pass::new(program);
    // Top-level statements first: their declarations become the globals
    // visible inside function bodies.
    pass.push_scope();
    for item in &program.items {
        if let Item::Statement(s) = item {
            pass.walk_stmt(s);
        }
    }
    // Function bodies see only the globals plus their parameters.
    for item in &program.items {
        if let Item::Function(f) = item {
            pass.push_scope();
            for p in &f.params {
                pass.declare(&p.name, p.ty.clone(), p.span, true);
            }
            pass.walk_stmts(&f.body.stmts);
            pass.pop_scope();
        }
    }
    pass.pop_scope();
    pass.findings
}

/// Everything the pass knows about one binding.
#[derive(Clone, Debug)]
struct VarInfo {
    name: String,
    ty: Type,
    decl_span: Span,
    used: bool,
    /// Span of the explicit `measure` that collapsed it, if any.
    measured: Option<Span>,
    /// Collapsed by *any* observation — explicit measure, `print`, or an
    /// implicit-measurement context. Satisfies QL003 without triggering
    /// QL001 (which stays explicit-measure-only to avoid false alarms).
    observed: bool,
    is_param: bool,
    /// Declaration captured a measurement result (explicit or implicit).
    from_measurement: bool,
    /// Returned, passed by reference, or aliased — its later life is
    /// outside this pass' view, so "never measured" cannot be concluded.
    escapes: bool,
}

struct Pass<'p> {
    scopes: Vec<Vec<VarInfo>>,
    /// User-declared function name → return type.
    functions: HashMap<&'p str, &'p Type>,
    findings: Vec<RawFinding>,
}

impl<'p> Pass<'p> {
    fn new(program: &'p Program) -> Self {
        let functions = program
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Function(f) => Some((f.name.as_str(), &f.ret_type)),
                _ => None,
            })
            .collect();
        Pass {
            scopes: Vec::new(),
            functions,
            findings: Vec::new(),
        }
    }

    fn report(&mut self, lint: &'static Lint, message: String, span: Span) {
        self.findings.push((lint, message, span));
    }

    // ---- scope management -------------------------------------------------

    fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Pops a scope and emits the end-of-life lints for its bindings.
    fn pop_scope(&mut self) {
        let Some(scope) = self.scopes.pop() else {
            return;
        };
        for v in scope {
            if v.name.starts_with('_') || v.is_param {
                continue;
            }
            if !v.used {
                if v.from_measurement {
                    self.report(
                        &lints::UNUSED_MEASUREMENT,
                        format!(
                            "the measurement stored in '{}' is never used; the collapse has \
                             no observable effect",
                            v.name
                        ),
                        v.decl_span,
                    );
                } else {
                    self.report(
                        &lints::UNUSED_VARIABLE,
                        format!("unused variable '{}'", v.name),
                        v.decl_span,
                    );
                }
            } else if v.ty.is_quantum() && !v.observed && !v.escapes {
                self.report(
                    &lints::DIRTY_QUBITS,
                    format!(
                        "quantum variable '{}' is operated on but never measured; its qubits \
                         stay allocated and unobserved",
                        v.name
                    ),
                    v.decl_span,
                );
            }
        }
    }

    fn declare(&mut self, name: &str, ty: Type, decl_span: Span, is_param: bool) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.push(VarInfo {
                name: name.to_string(),
                ty,
                decl_span,
                used: false,
                measured: None,
                observed: false,
                is_param,
                from_measurement: false,
                escapes: is_param,
            });
        }
    }

    fn lookup(&self, name: &str) -> Option<&VarInfo> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|v| v.name == name))
    }

    fn lookup_mut(&mut self, name: &str) -> Option<&mut VarInfo> {
        self.scopes
            .iter_mut()
            .rev()
            .find_map(|s| s.iter_mut().rev().find(|v| v.name == name))
    }

    fn mark_used(&mut self, name: &str) {
        if let Some(v) = self.lookup_mut(name) {
            v.used = true;
        }
    }

    fn mark_escapes(&mut self, name: &str) {
        if let Some(v) = self.lookup_mut(name) {
            v.escapes = true;
        }
    }

    fn var_type(&self, name: &str) -> Option<Type> {
        self.lookup(name).map(|v| v.ty.clone())
    }

    // ---- measured-state snapshots (for branches and loops) ---------------

    fn snapshot_measured(&self) -> Vec<Vec<Option<Span>>> {
        self.scopes
            .iter()
            .map(|s| s.iter().map(|v| v.measured).collect())
            .collect()
    }

    fn restore_measured(&mut self, snap: &[Vec<Option<Span>>]) {
        for (scope, marks) in self.scopes.iter_mut().zip(snap) {
            for (v, m) in scope.iter_mut().zip(marks) {
                v.measured = *m;
            }
        }
    }

    /// After exploring both arms of a branch: a variable stays measured
    /// only if *every* path measured it.
    fn merge_measured(&mut self, then_snap: &[Vec<Option<Span>>]) {
        for (scope, marks) in self.scopes.iter_mut().zip(then_snap) {
            for (v, then_m) in scope.iter_mut().zip(marks) {
                v.measured = match (*then_m, v.measured) {
                    (Some(s), Some(_)) => Some(s),
                    _ => None,
                };
            }
        }
    }

    // ---- lint trigger helpers ---------------------------------------------

    /// Innermost variable an lvalue-ish expression resolves to.
    fn root_var(e: &Expr) -> Option<&str> {
        match &e.kind {
            ExprKind::Var(n) => Some(n),
            ExprKind::Index(b, _) => Self::root_var(b),
            ExprKind::MeasureExpr(inner) => Self::root_var(inner),
            _ => None,
        }
    }

    /// QL001: a quantum operation touches `e` after an explicit measure.
    fn check_quantum_use(&mut self, e: &Expr) {
        let Some(name) = Self::root_var(e) else {
            return;
        };
        let Some(v) = self.lookup(name) else { return };
        if v.measured.is_some() {
            let name = v.name.clone();
            self.report(
                &lints::USE_AFTER_MEASUREMENT,
                format!(
                    "quantum variable '{name}' is used in a quantum operation after being \
                     measured; the measurement already collapsed its state"
                ),
                e.span,
            );
        }
    }

    /// Marks the root variable of an explicitly measured expression.
    fn mark_measured(&mut self, e: &Expr, measure_span: Span) {
        if let Some(name) = Self::root_var(e) {
            let name = name.to_string();
            if let Some(v) = self.lookup_mut(&name) {
                v.used = true;
                v.measured = Some(measure_span);
                v.observed = true;
            }
        }
    }

    /// QL002: `init` aliases an existing quantum value.
    fn check_alias(&mut self, new_name: &str, target_ty: &Type, init: &Expr) {
        if !target_ty.is_quantum() {
            return;
        }
        let source = match &init.kind {
            ExprKind::Var(n) => Some((n.clone(), false)),
            ExprKind::Index(b, _) => Self::root_var(b).map(|n| (n.to_string(), true)),
            _ => None,
        };
        let Some((src, is_element)) = source else {
            return;
        };
        let Some(src_ty) = self.var_type(&src) else {
            return;
        };
        if !src_ty.is_quantum() {
            return;
        }
        let what = if is_element {
            format!("a qubit of '{src}'")
        } else {
            format!("the qubits of '{src}'")
        };
        self.report(
            &lints::QUANTUM_ALIAS,
            format!(
                "'{new_name}' aliases {what}; quantum state cannot be cloned, so both names \
                 share the same qubits and operations through one affect the other"
            ),
            init.span,
        );
        // The aliased qubits may be measured through the new name, so
        // "never measured" can no longer be concluded for the source.
        self.mark_escapes(&src);
    }

    /// QL201 at `e`, describing the implicitly measured `ty`. The root
    /// variable counts as observed afterwards (satisfies QL003).
    fn implicit_measure(&mut self, e: &Expr, ty: &Type, context: &str) {
        self.report(
            &lints::IMPLICIT_MEASUREMENT,
            format!("this {ty} value is implicitly measured {context}; its state collapses"),
            e.span,
        );
        self.mark_observed(e);
    }

    /// Marks the root variable of `e` as observed (collapsed somehow).
    fn mark_observed(&mut self, e: &Expr) {
        if let Some(name) = Self::root_var(e) {
            let name = name.to_string();
            if let Some(v) = self.lookup_mut(&name) {
                v.observed = true;
            }
        }
    }

    /// Best-effort static type of an expression (None when unknown).
    fn expr_type(&self, e: &Expr) -> Option<Type> {
        Some(match &e.kind {
            ExprKind::Int(_) => Type::Int,
            ExprKind::Float(_) | ExprKind::Pi => Type::Float,
            ExprKind::Bool(_) => Type::Bool,
            ExprKind::Str(_) => Type::String,
            ExprKind::Quint(_) => Type::Quint,
            ExprKind::Qustring(_) => Type::Qustring,
            ExprKind::Ket(_) => Type::Qubit,
            ExprKind::QuantumArray(_) => Type::Quint,
            ExprKind::Array(items) => {
                let elem = items.first().and_then(|i| self.expr_type(i))?;
                Type::Array(Box::new(elem))
            }
            ExprKind::Var(n) => self.var_type(n)?,
            ExprKind::Index(b, _) => match self.expr_type(b)? {
                Type::Array(t) => *t,
                Type::Qubit | Type::Quint | Type::Qustring => Type::Qubit,
                Type::String => Type::String,
                _ => return None,
            },
            ExprKind::Unary(UnOp::Not, _) => Type::Bool,
            ExprKind::Unary(UnOp::Neg, inner) => self.expr_type(inner)?,
            ExprKind::Binary(op, l, r) => match op {
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
                | BinOp::In => Type::Bool,
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    let lt = self.expr_type(l);
                    let rt = self.expr_type(r);
                    if lt == Some(Type::Quint) || rt == Some(Type::Quint) {
                        Type::Quint
                    } else {
                        lt?
                    }
                }
                BinOp::Shl | BinOp::Shr => self.expr_type(l)?,
                BinOp::Div | BinOp::Mod => return None,
            },
            ExprKind::Call(name, _) => match name.as_str() {
                "len" | "width" | "qmin" | "qmax" | "int" => Type::Int,
                "float" => Type::Float,
                "bool" => Type::Bool,
                "str" => Type::String,
                "range" => Type::Array(Box::new(Type::Int)),
                "rotl" | "rotr" => Type::Void,
                user => (*self.functions.get(user)?).clone(),
            },
            ExprKind::MeasureExpr(inner) => {
                let t = self.expr_type(inner)?;
                measured(&t)?
            }
        })
    }

    fn is_quantum_expr(&self, e: &Expr) -> bool {
        self.expr_type(e).is_some_and(|t| t.is_quantum())
    }

    // ---- walkers ----------------------------------------------------------

    fn walk_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.walk_stmt(s);
        }
    }

    fn walk_block(&mut self, b: &Block) {
        self.push_scope();
        self.walk_stmts(&b.stmts);
        self.pop_scope();
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl {
                ty,
                name,
                init,
                span,
            } => {
                let mut from_measurement = false;
                if let Some(e) = init {
                    self.walk_expr(e);
                    self.check_alias(name, ty, e);
                    let is_explicit_measure = matches!(e.kind, ExprKind::MeasureExpr(_));
                    if is_explicit_measure {
                        from_measurement = true;
                    } else if ty.is_classical() && self.is_quantum_expr(e) {
                        from_measurement = true;
                        let et = self.expr_type(e).unwrap_or(Type::Qubit);
                        self.implicit_measure(
                            e,
                            &et,
                            &format!("when assigned to the {ty} variable '{name}'"),
                        );
                    }
                }
                self.declare(name, ty.clone(), *span, false);
                if let Some(v) = self.lookup_mut(name) {
                    v.from_measurement = from_measurement;
                }
            }
            Stmt::Assign {
                target, op, value, ..
            } => {
                self.walk_expr(value);
                let name = match target {
                    LValue::Name(n) => n.clone(),
                    LValue::Index(n, idx) => {
                        let idx = idx.clone();
                        self.walk_expr(&idx);
                        // Writing an element reads the array binding.
                        self.mark_used(n);
                        n.clone()
                    }
                };
                let target_ty = self.var_type(&name);
                let target_quantum = target_ty.as_ref().is_some_and(|t| t.is_quantum());
                match op {
                    AssignOp::Set => {
                        if let (Some(ty), LValue::Name(_)) = (&target_ty, target) {
                            self.check_alias(&name, ty, value);
                            if ty.is_classical()
                                && self.is_quantum_expr(value)
                                && !matches!(value.kind, ExprKind::MeasureExpr(_))
                            {
                                let ty = ty.clone();
                                let et = self.expr_type(value).unwrap_or(Type::Qubit);
                                self.implicit_measure(
                                    value,
                                    &et,
                                    &format!("when assigned to the {ty} variable '{name}'"),
                                );
                            }
                        }
                        // A fresh value replaces the measured one.
                        if let (LValue::Name(_), Some(v)) = (target, self.lookup_mut(&name)) {
                            v.measured = None;
                        }
                    }
                    AssignOp::Add | AssignOp::Sub | AssignOp::Shl | AssignOp::Shr => {
                        // Compound assignment reads the target.
                        self.mark_used(&name);
                        if target_quantum {
                            let target_expr = Expr::new(ExprKind::Var(name.clone()), s.span());
                            self.check_quantum_use(&target_expr);
                            if matches!(op, AssignOp::Add | AssignOp::Sub)
                                && self.is_quantum_expr(value)
                            {
                                self.check_quantum_use(value);
                            }
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                self.walk_expr(cond);
                if let Some(t) = self.expr_type(cond) {
                    if t.is_quantum() {
                        self.implicit_measure(cond, &t, "by this condition");
                    }
                }
                let before = self.snapshot_measured();
                self.walk_block(then_block);
                let after_then = self.snapshot_measured();
                self.restore_measured(&before);
                if let Some(eb) = else_block {
                    self.walk_block(eb);
                }
                self.merge_measured(&after_then);
            }
            Stmt::While { cond, body, .. } => {
                self.walk_expr(cond);
                if let Some(t) = self.expr_type(cond) {
                    if t.is_quantum() {
                        self.implicit_measure(cond, &t, "by this condition");
                    }
                }
                let before = self.snapshot_measured();
                self.walk_block(body);
                // A measure late in the body must not flag uses earlier in
                // the body on a later iteration; conservatively forget it.
                self.restore_measured(&before);
            }
            Stmt::Foreach {
                var,
                iterable,
                body,
                ..
            } => {
                self.walk_expr(iterable);
                let elem_ty = match self.expr_type(iterable) {
                    Some(Type::Array(t)) => *t,
                    Some(Type::Qustring) => Type::Qubit,
                    _ => Type::Int,
                };
                let before = self.snapshot_measured();
                self.push_scope();
                self.declare(var, elem_ty, iterable.span, false);
                self.walk_stmts(&body.stmts);
                self.pop_scope();
                self.restore_measured(&before);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    self.walk_expr(e);
                    if let Some(n) = Self::root_var(e) {
                        let n = n.to_string();
                        self.mark_escapes(&n);
                    }
                }
            }
            Stmt::Print { value, .. } => {
                // Printing a quantum value measures it, but that is the
                // idiomatic way to observe a result — no QL201 here. It
                // does satisfy QL003's "never measured", though.
                self.walk_expr(value);
                if self.is_quantum_expr(value) {
                    self.mark_observed(value);
                }
            }
            Stmt::Expr { expr, .. } => self.walk_expr(expr),
            Stmt::Gate { gate, args, .. } => {
                // All operands are quantum uses; for `phase` the trailing
                // argument is the classical angle.
                let operands = match gate {
                    GateKind::Phase => &args[..args.len().min(1)],
                    _ => &args[..],
                };
                for a in args {
                    self.walk_expr(a);
                }
                for a in operands {
                    self.check_quantum_use(a);
                }
            }
            Stmt::Measure { target, span } => {
                self.walk_expr(target);
                self.mark_measured(target, *span);
            }
            Stmt::Barrier { .. } => {}
            Stmt::Block(b) => self.walk_block(b),
        }
    }

    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Var(n) => {
                let n = n.clone();
                self.mark_used(&n);
            }
            ExprKind::Index(b, i) => {
                self.walk_expr(b);
                self.walk_expr(i);
            }
            ExprKind::Unary(_, inner) => self.walk_expr(inner),
            ExprKind::Binary(op, l, r) => {
                self.walk_expr(l);
                self.walk_expr(r);
                match op {
                    // Quantum arithmetic / shifts operate on live state.
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl | BinOp::Shr => {
                        for side in [l, r] {
                            if self.is_quantum_expr(side) {
                                self.check_quantum_use(side);
                            }
                        }
                    }
                    // `pattern in haystack` runs Grover on the haystack
                    // and implicitly measures a quantum pattern.
                    BinOp::In => {
                        if self.is_quantum_expr(r) {
                            self.check_quantum_use(r);
                        }
                        if let Some(t) = self.expr_type(l) {
                            if t.is_quantum() {
                                self.implicit_measure(l, &t, "when used as an 'in' search pattern");
                            }
                        }
                    }
                    // Classical-only operators auto-measure quantum
                    // operands.
                    BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
                    | BinOp::Div
                    | BinOp::Mod
                    | BinOp::And
                    | BinOp::Or => {
                        let op = *op;
                        for side in [l, r] {
                            if let Some(t) = self.expr_type(side) {
                                if t.is_quantum() {
                                    self.implicit_measure(
                                        side,
                                        &t,
                                        &format!("by the classical '{op}' operator"),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            ExprKind::Call(name, args) => {
                for a in args {
                    self.walk_expr(a);
                }
                match name.as_str() {
                    "int" | "float" | "bool" | "str" => {
                        if let Some(a) = args.first() {
                            if let Some(t) = self.expr_type(a) {
                                if t.is_quantum() && !matches!(a.kind, ExprKind::MeasureExpr(_)) {
                                    let name = name.clone();
                                    self.implicit_measure(a, &t, &format!("by the {name}() cast"));
                                }
                            }
                        }
                    }
                    "rotl" | "rotr" => {
                        if let Some(a) = args.first() {
                            self.check_quantum_use(a);
                        }
                    }
                    user if self.functions.contains_key(user) => {
                        // Plain-variable arguments bind by reference: the
                        // callee may measure or transform them.
                        for a in args {
                            if let ExprKind::Var(n) = &a.kind {
                                let n = n.clone();
                                self.mark_escapes(&n);
                            }
                        }
                    }
                    _ => {}
                }
            }
            ExprKind::MeasureExpr(inner) => {
                self.walk_expr(inner);
                self.mark_measured(inner, e.span);
            }
            _ => {
                // Literals: walk nested array elements.
                if let ExprKind::Array(items) | ExprKind::QuantumArray(items) = &e.kind {
                    for i in items {
                        self.walk_expr(i);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qutes_frontend::parse;

    fn ids(src: &str) -> Vec<&'static str> {
        let program = parse(src).expect("test program parses");
        let mut found: Vec<&'static str> = run(&program).iter().map(|(l, _, _)| l.id).collect();
        found.sort_unstable();
        found
    }

    #[test]
    fn use_after_measurement_fires_on_gate() {
        let src = "qubit q = |+>;\nmeasure q;\nhadamard q;\nprint q;\n";
        assert!(ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn reassignment_clears_measured_state() {
        let src = "qubit q = |+>;\nmeasure q;\nq = |0>;\nhadamard q;\nprint q;\n";
        assert!(!ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn measure_in_one_branch_only_does_not_flag() {
        let src = "qubit q = |+>;\nbool c = false;\nif (c) {\n  measure q;\n} else {\n}\nhadamard q;\nprint q;\n";
        assert!(!ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn measure_in_both_branches_flags() {
        let src = "qubit q = |+>;\nbool c = false;\nif (c) {\n  measure q;\n} else {\n  measure q;\n}\nhadamard q;\nprint q;\n";
        assert!(ids(src).contains(&"QL001"), "{:?}", ids(src));
    }

    #[test]
    fn alias_fires_on_quantum_var_init() {
        let src = "qubit a = |+>;\nqubit b = a;\nprint a;\nprint b;\n";
        assert!(ids(src).contains(&"QL002"), "{:?}", ids(src));
    }

    #[test]
    fn unused_variable_and_measurement() {
        let found = ids("int x = 1;\nqubit q = |+>;\nbool b = measure q;\nprint \"done\";\n");
        assert!(found.contains(&"QL101"), "{:?}", found);
        assert!(found.contains(&"QL004"), "{:?}", found);
    }

    #[test]
    fn underscore_prefix_silences_unused() {
        let found = ids("int _scratch = 1;\nprint \"done\";\n");
        assert!(!found.contains(&"QL101"), "{:?}", found);
    }

    #[test]
    fn dirty_qubits_is_noted_but_not_for_escaping_vars() {
        let noisy = ids("qubit q = |+>;\nhadamard q;\n");
        assert!(noisy.contains(&"QL003"), "{:?}", noisy);
        let returned = ids(
            "qubit make() {\n  qubit q = |+>;\n  hadamard q;\n  return q;\n}\nqubit r = make();\nprint r;\n",
        );
        assert!(!returned.contains(&"QL003"), "{:?}", returned);
    }

    #[test]
    fn implicit_measurement_noted_on_lossy_decl() {
        let found = ids("qubit q = |+>;\nbool b = q;\nprint b;\n");
        assert!(found.contains(&"QL201"), "{:?}", found);
        // The explicit form is silent.
        let explicit = ids("qubit q = |+>;\nbool b = measure q;\nprint b;\n");
        assert!(!explicit.contains(&"QL201"), "{:?}", explicit);
    }

    #[test]
    fn print_is_not_an_implicit_measurement_site() {
        let found = ids("qubit q = |+>;\nhadamard q;\nprint q;\n");
        assert!(!found.contains(&"QL201"), "{:?}", found);
    }

    #[test]
    fn params_are_exempt_from_unused() {
        let found = ids("int id(int x) {\n  return 7;\n}\nprint id(3);\n");
        assert!(!found.contains(&"QL101"), "{:?}", found);
    }
}
