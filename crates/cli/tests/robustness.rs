//! Robustness regression tests for the `qutes` binary: deadlines return
//! typed errors promptly, every exit path flushes a tagged stats
//! snapshot, and malformed input to `lint`/`check` produces diagnostics
//! — never a panic, never a hang.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::{Duration, Instant};

fn qutes(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qutes"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_program(name: &str, src: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qutes-cli-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, src).unwrap();
    path
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// A classical loop that runs for much longer than any test deadline.
const SPIN: &str = "int i = 0;\nwhile (i < 100000000) { i = i + 1; }\nprint i;";

#[test]
fn time_budget_returns_typed_error_well_under_a_second() {
    let p = write_program("spin.qut", SPIN);
    let t0 = Instant::now();
    let out = qutes(&[
        "run",
        p.to_str().unwrap(),
        "--time-budget",
        "100",
        "--max-steps",
        "999999999999",
    ]);
    let elapsed = t0.elapsed();
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("deadline"), "{err}");
    // Acceptance bar: a 100ms budget resolves well under 1s end to end
    // (binary spawn included).
    assert!(elapsed < Duration::from_secs(1), "took {elapsed:?}");
}

#[test]
fn aborted_run_still_flushes_tagged_stats_json() {
    let p = write_program("spin_stats.qut", SPIN);
    let json_path = std::env::temp_dir()
        .join("qutes-cli-robustness")
        .join("aborted_stats.json");
    let _ = std::fs::remove_file(&json_path);
    let out = qutes(&[
        "run",
        p.to_str().unwrap(),
        "--time-budget",
        "50",
        "--max-steps",
        "999999999999",
        "--stats-json",
        json_path.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let json = std::fs::read_to_string(&json_path).expect("snapshot written on abort");
    assert!(json.contains("\"aborted\": true"), "{json}");
    assert!(json.contains("\"version\": 1"), "{json}");
    // Balanced braces: the partial snapshot is still structurally valid.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn successful_run_stats_json_is_not_aborted() {
    let p = write_program("ok_stats.qut", "print 1 + 1;");
    let out = qutes(&["run", p.to_str().unwrap(), "--stats-json", "-"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(json.contains("\"aborted\": false"), "{json}");
}

#[test]
fn run_failure_with_stats_json_tags_abort() {
    let p = write_program("bad_op.qut", "int x = 1;\nhadamard x;");
    let json_path = std::env::temp_dir()
        .join("qutes-cli-robustness")
        .join("failed_stats.json");
    let _ = std::fs::remove_file(&json_path);
    let out = qutes(&[
        "run",
        p.to_str().unwrap(),
        "--stats-json",
        json_path.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let json = std::fs::read_to_string(&json_path).expect("snapshot written on failure");
    assert!(json.contains("\"aborted\": true"), "{json}");
}

#[test]
fn time_budget_rejects_garbage() {
    let p = write_program("tb.qut", "print 1;");
    let out = qutes(&["run", p.to_str().unwrap(), "--time-budget", "soon"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--time-budget"), "{}", stderr(&out));
}

// ---- malformed-input corpus for `lint` and `check` ----------------------

/// Every corpus entry must exit with a *diagnostic* (non-zero, rendered
/// to stderr/stdout) — the process must not be killed by a signal,
/// which is what a panic/abort would produce.
fn assert_diagnosed(cmd: &str, name: &str, src: &str) {
    let p = write_program(name, src);
    let out = qutes(&[cmd, p.to_str().unwrap()]);
    assert!(!out.status.success(), "{cmd} accepted {name}");
    #[cfg(unix)]
    {
        assert!(
            out.status.code().is_some(),
            "{cmd} on {name} was killed by a signal (panic/abort?)"
        );
    }
    let err = stderr(&out);
    assert!(!err.contains("panicked"), "{cmd} on {name} panicked: {err}");
}

#[test]
fn lint_survives_deeply_nested_input() {
    let mut src = String::new();
    for _ in 0..2_000 {
        src.push_str("if (true) { ");
    }
    src.push_str("print 1;");
    // No closing braces: deep and truncated at once.
    assert_diagnosed("lint", "deep.qut", &src);
    assert_diagnosed("check", "deep.qut", &src);
}

#[test]
fn lint_survives_truncated_input() {
    for (name, src) in [
        ("trunc1.qut", "quint a = [1, 2"),
        ("trunc2.qut", "int x = "),
        ("trunc3.qut", "while (true) {"),
        ("trunc4.qut", "qubit q = |"),
    ] {
        assert_diagnosed("lint", name, src);
        assert_diagnosed("check", name, src);
    }
}

#[test]
fn lint_survives_pathological_identifiers() {
    let long = "x".repeat(100_000);
    for (name, src) in [
        ("ident1.qut", format!("int {long} = 1; print {long};")),
        ("ident2.qut", "int \u{202e}x = 1;".to_string()),
        ("ident3.qut", format!("print {};", "((".repeat(5_000))),
    ] {
        let p = write_program(name, &src);
        let out = qutes(&["lint", p.to_str().unwrap()]);
        // ident1 is valid (merely enormous); the others must be
        // diagnosed. Either way: no panic, no signal death.
        #[cfg(unix)]
        assert!(
            out.status.code().is_some(),
            "lint on {name} died on a signal"
        );
        assert!(
            !stderr(&out).contains("panicked"),
            "{name}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn lint_handles_non_utf8_and_empty_files() {
    let dir = std::env::temp_dir().join("qutes-cli-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    let raw = dir.join("raw.qut");
    std::fs::write(&raw, [0xff, 0xfe, 0x00, 0x41]).unwrap();
    let out = qutes(&["lint", raw.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));

    let empty = write_program("empty.qut", "");
    let out = qutes(&["lint", empty.to_str().unwrap()]);
    #[cfg(unix)]
    assert!(out.status.code().is_some());
}
