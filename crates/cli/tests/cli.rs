//! End-to-end CLI tests: drive the built `qutes` binary on real files
//! and check stdout/stderr/exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qutes(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qutes"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_program(name: &str, src: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qutes-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, src).unwrap();
    path
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn run_prints_program_output() {
    let p = write_program("add.qut", "quint a = 5q; quint b = 3q; print a + b;");
    let out = qutes(&["run", p.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stdout(&out).trim(), "8");
}

#[test]
fn run_is_seed_reproducible() {
    let p = write_program("super.qut", "quint n = [0, 1, 2, 3]q; print n;");
    let a = stdout(&qutes(&["run", p.to_str().unwrap(), "--seed", "9"]));
    let b = stdout(&qutes(&["run", p.to_str().unwrap(), "--seed", "9"]));
    assert_eq!(a, b);
}

#[test]
fn run_stats_go_to_stderr() {
    let p = write_program("stats.qut", "qubit q = |+>; print q;");
    let out = qutes(&["run", p.to_str().unwrap(), "--stats"]);
    assert!(out.status.success());
    // H + measure is Clifford-only: `auto` resolves to the tableau.
    assert!(
        stderr(&out).contains("[stats] backend=tableau qubits=1"),
        "{}",
        stderr(&out)
    );
    let out = qutes(&[
        "run",
        p.to_str().unwrap(),
        "--stats",
        "--backend",
        "statevector",
    ]);
    assert!(out.status.success());
    assert!(
        stderr(&out).contains("[stats] backend=statevector qubits=1"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn run_draw_renders_circuit() {
    let p = write_program(
        "bell.qut",
        "qubit a = |0>; qubit b = |0>; hadamard a; cnot a, b;",
    );
    let out = qutes(&["run", p.to_str().unwrap(), "--draw"]);
    let text = stdout(&out);
    assert!(text.contains("q0: "), "{text}");
    assert!(text.contains('H'));
    assert!(text.contains('X'));
}

#[test]
fn run_reports_errors_with_context() {
    let p = write_program("bad.qut", "int x = 1;\nhadamard x;");
    let out = qutes(&["run", p.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("quantum operand"), "{err}");
    assert!(err.contains("hadamard x;"), "{err}");
}

#[test]
fn check_passes_and_fails() {
    let good = write_program("good.qut", "print 1 + 1;");
    let out = qutes(&["check", good.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).trim(), "ok");

    let bad = write_program("badtype.qut", "int x = \"nope\";");
    let out = qutes(&["check", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot initialise"));
}

#[test]
fn fmt_canonicalises() {
    let messy = write_program("messy.qut", "int   x=1;   print    x ;");
    let out = qutes(&["fmt", messy.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(stdout(&out), "int x = 1;\nprint x;\n");
}

#[test]
fn qasm_emits_openqasm2_and_3() {
    let p = write_program("q.qut", "qubit a = |+>; print a;");
    let out = qutes(&["qasm", p.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("OPENQASM 2.0;"));
    let out = qutes(&["qasm", p.to_str().unwrap(), "--v3"]);
    assert!(stdout(&out).contains("OPENQASM 3.0;"));
}

#[test]
fn qasm_writes_output_file() {
    let p = write_program("qo.qut", "qubit a = |1>; print a;");
    let target = std::env::temp_dir().join("qutes-cli-tests/out.qasm");
    let _ = std::fs::remove_file(&target);
    let out = qutes(&["qasm", p.to_str().unwrap(), "-o", target.to_str().unwrap()]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&target).unwrap();
    assert!(text.contains("OPENQASM 2.0;"));
}

#[test]
fn bad_usage_exits_2() {
    let out = qutes(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = qutes(&["run"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("missing input file"));
    let p = write_program("u.qut", "print 1;");
    let out = qutes(&["run", p.to_str().unwrap(), "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let out = qutes(&["frobnicate", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn run_trace_prints_span_tree() {
    let p = write_program(
        "trace.qut",
        "qubit a = |0>; qubit b = |0>; hadamard a; cnot a, b; print a;",
    );
    // Pinned to the statevector: the tableau path (which this Clifford
    // program would auto-select) intentionally skips `stage.optimize`.
    let out = qutes(&[
        "run",
        p.to_str().unwrap(),
        "--trace",
        "--shots",
        "4",
        "--backend",
        "statevector",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("-- trace --"), "{err}");
    assert!(err.contains("stage.parse"), "{err}");
    assert!(err.contains("stage.op_pass"), "{err}");
    assert!(err.contains("stage.optimize"), "{err}");
    assert!(err.contains("stage.simulate"), "{err}");
}

#[test]
fn run_profile_prints_hot_path_table() {
    let p = write_program(
        "profile.qut",
        "qubit a = |0>; qubit b = |0>; hadamard a; cnot a, b; print a;",
    );
    // Pinned to the statevector: `kernel.1q` is a dense-engine counter.
    let out = qutes(&[
        "run",
        p.to_str().unwrap(),
        "--profile",
        "--backend",
        "statevector",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("-- profile --"), "{err}");
    assert!(err.contains("-- counters --"), "{err}");
    assert!(err.contains("gate.h"), "{err}");
    assert!(err.contains("kernel.1q"), "{err}");
}

#[test]
fn run_stats_json_writes_snapshot() {
    let p = write_program("statsjson.qut", "qubit a = |+>; print a;");
    let target = std::env::temp_dir().join("qutes-cli-tests/stats.json");
    let _ = std::fs::remove_file(&target);
    let out = qutes(&[
        "run",
        p.to_str().unwrap(),
        "--stats-json",
        target.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    // Observability output must not pollute stdout or stderr.
    assert!(!stderr(&out).contains("-- trace --"));
    let text = std::fs::read_to_string(&target).unwrap();
    assert!(text.contains("\"version\": 1"), "{text}");
    assert!(text.contains("\"timers\""), "{text}");
    assert!(text.contains("\"counters\""), "{text}");
    assert!(text.contains("\"spans\""), "{text}");
    assert!(text.contains("gate.h"), "{text}");
    assert_eq!(
        text.matches('{').count(),
        text.matches('}').count(),
        "balanced JSON braces: {text}"
    );
}

#[test]
fn run_stats_json_dash_goes_to_stdout() {
    let p = write_program("statsjson2.qut", "print 1;");
    let out = qutes(&["run", p.to_str().unwrap(), "--stats-json", "-"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.lines().next().unwrap().trim() == "1", "{text}");
    assert!(text.contains("\"version\": 1"), "{text}");
}

#[test]
fn missing_file_reports_cleanly() {
    let out = qutes(&["run", "/nonexistent/path.qut"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn max_steps_flag_guards_loops() {
    let p = write_program("loop.qut", "while (true) { }");
    let out = qutes(&["run", p.to_str().unwrap(), "--max-steps", "100"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("exceeded 100 steps"));
}

// ---- the lint subcommand and run --lint -----------------------------------

#[test]
fn lint_reports_findings_and_resources() {
    let p = write_program("lint_unused.qut", "int unused = 1;\nprint 2;\n");
    let out = qutes(&["lint", p.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "warnings alone must not fail the lint"
    );
    let text = stdout(&out);
    assert!(text.contains("warning[QL101]"), "{text}");
    assert!(text.contains("unused variable 'unused' at 1:1"), "{text}");
    assert!(text.contains("resources:"), "{text}");
}

#[test]
fn lint_clean_program_prints_only_resources() {
    let p = write_program("lint_clean.qut", "qubit q = |+>; print q;");
    let out = qutes(&["lint", p.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("resources: 1 qubit"), "{text}");
}

#[test]
fn lint_deny_warnings_fails_the_exit_code() {
    let p = write_program("lint_deny.qut", "int unused = 1;\nprint 2;\n");
    let out = qutes(&["lint", p.to_str().unwrap(), "--deny-warnings"]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("error[QL101]"), "{}", stdout(&out));
}

#[test]
fn lint_allow_silences_a_lint() {
    let p = write_program("lint_allow.qut", "int unused = 1;\nprint 2;\n");
    let out = qutes(&[
        "lint",
        p.to_str().unwrap(),
        "--deny-warnings",
        "-A",
        "QL101",
    ]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(!stdout(&out).contains("QL101"));
}

#[test]
fn lint_json_emits_machine_readable_report() {
    let p = write_program("lint_json.qut", "int unused = 1;\nprint 2;\n");
    let out = qutes(&["lint", p.to_str().unwrap(), "--lint-json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("\"id\": \"QL101\""), "{text}");
    assert!(text.contains("\"line\": 1, \"col\": 1"), "{text}");
    assert!(text.contains("\"resources\""), "{text}");
    assert_eq!(
        text.matches('{').count(),
        text.matches('}').count(),
        "balanced JSON braces: {text}"
    );
}

#[test]
fn lint_rejects_unknown_lint_ids() {
    let p = write_program("lint_badid.qut", "print 1;");
    let out = qutes(&["lint", p.to_str().unwrap(), "-A", "QL999"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown lint 'QL999'"), "{err}");
    assert!(
        err.contains("QL001"),
        "the error must list known ids: {err}"
    );
}

#[test]
fn lint_reports_parse_errors_on_stderr() {
    let p = write_program("lint_parse.qut", "qubit q = ;");
    let out = qutes(&["lint", p.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error"), "{}", stderr(&out));
}

#[test]
fn run_lint_deny_warnings_refuses_execution() {
    let p = write_program("run_lint.qut", "int unused = 1;\nprint 2;\n");
    let out = qutes(&["run", p.to_str().unwrap(), "--lint", "--deny-warnings"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("refusing to run"), "{}", stderr(&out));
    assert!(
        !stdout(&out).contains('2'),
        "the program must not have executed: {}",
        stdout(&out)
    );
}

#[test]
fn run_lint_warnings_do_not_block_execution() {
    let p = write_program("run_lint_warn.qut", "int unused = 1;\nprint 2;\n");
    let out = qutes(&["run", p.to_str().unwrap(), "--lint"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stdout(&out).trim(), "2");
    assert!(stderr(&out).contains("QL101"), "{}", stderr(&out));
}

#[test]
fn run_without_lint_flag_is_unchanged() {
    let p = write_program("run_nolint.qut", "int unused = 1;\nprint 2;\n");
    let out = qutes(&["run", p.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).trim(), "2");
    assert!(!stderr(&out).contains("QL101"));
}
