//! `qutes` — command-line driver for the Qutes language.
//!
//! ```text
//! qutes run   <file.qut> [--seed N] [--max-steps N] [--stats]
//! qutes check <file.qut>
//! qutes fmt   <file.qut>
//! qutes qasm  <file.qut> [--v3] [--seed N] [-o out.qasm]
//! ```
//!
//! `run` executes the program and prints its `print` output; `qasm`
//! executes it and emits the accumulated circuit as OpenQASM (the
//! measurement outcomes taken during execution determine classically-
//! conditioned paths, exactly like the paper's Qiskit lowering).

use qutes_core::{run_source, RunConfig};
use qutes_frontend::{parse, print_program};
use qutes_qasm::{to_qasm2, to_qasm3};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  qutes run   <file.qut> [--seed N] [--max-steps N] [--stats] [--draw]\n  \
         qutes check <file.qut>\n  qutes fmt   <file.qut>\n  \
         qutes qasm  <file.qut> [--v3] [--seed N] [-o out.qasm]"
    );
    ExitCode::from(2)
}

struct Args {
    path: String,
    seed: u64,
    max_steps: u64,
    stats: bool,
    draw: bool,
    v3: bool,
    out: Option<String>,
}

fn parse_args(rest: &[String]) -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        seed: 0,
        max_steps: 1_000_000,
        stats: false,
        draw: false,
        v3: false,
        out: None,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?;
            }
            "--max-steps" => {
                args.max_steps = it
                    .next()
                    .ok_or("--max-steps needs a value")?
                    .parse()
                    .map_err(|_| "--max-steps needs an integer")?;
            }
            "--stats" => args.stats = true,
            "--draw" => args.draw = true,
            "--v3" => args.v3 = true,
            "-o" | "--out" => {
                args.out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            path => {
                if args.path.is_empty() {
                    args.path = path.to_string();
                } else {
                    return Err(format!("unexpected argument '{path}'"));
                }
            }
        }
    }
    if args.path.is_empty() {
        return Err("missing input file".into());
    }
    Ok(args)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let source = match read(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "run" => {
            let cfg = RunConfig {
                seed: args.seed,
                max_steps: args.max_steps,
                ..RunConfig::default()
            };
            match run_source(&source, &cfg) {
                Ok(out) => {
                    for line in &out.output {
                        println!("{line}");
                    }
                    if args.draw {
                        print!("{}", qutes_qcirc::draw(&out.circuit));
                    }
                    if args.stats {
                        let stats = out.circuit.stats();
                        eprintln!(
                            "[stats] qubits={} measurements={} ops={} depth={}",
                            out.qubits_used, out.measurements, stats.size, stats.depth
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{}", e.render(&source));
                    ExitCode::FAILURE
                }
            }
        }
        "check" => match parse(&source) {
            Ok(program) => {
                let diags = qutes_core::check_program(&program);
                if diags.is_empty() {
                    println!("ok");
                    ExitCode::SUCCESS
                } else {
                    for d in diags {
                        eprint!("{}", d.render(&source));
                    }
                    ExitCode::FAILURE
                }
            }
            Err(diags) => {
                for d in diags {
                    eprint!("{}", d.render(&source));
                }
                ExitCode::FAILURE
            }
        },
        "fmt" => match parse(&source) {
            Ok(program) => {
                print!("{}", print_program(&program));
                ExitCode::SUCCESS
            }
            Err(diags) => {
                for d in diags {
                    eprint!("{}", d.render(&source));
                }
                ExitCode::FAILURE
            }
        },
        "qasm" => {
            let cfg = RunConfig {
                seed: args.seed,
                max_steps: args.max_steps,
                ..RunConfig::default()
            };
            match run_source(&source, &cfg) {
                Ok(out) => {
                    let rendered = if args.v3 {
                        to_qasm3(&out.circuit)
                    } else {
                        to_qasm2(&out.circuit)
                    };
                    match rendered {
                        Ok(text) => {
                            if let Some(path) = &args.out {
                                if let Err(e) = std::fs::write(path, &text) {
                                    eprintln!("error: cannot write '{path}': {e}");
                                    return ExitCode::FAILURE;
                                }
                            } else {
                                print!("{text}");
                            }
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("error: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                Err(e) => {
                    eprintln!("{}", e.render(&source));
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("error: unknown command '{other}'");
            usage()
        }
    }
}
