//! `qutes` — command-line driver for the Qutes language.
//!
//! ```text
//! qutes run    <file.qut> [--seed N] [--max-steps N] [--stats] [--draw]
//!              [--noise P] [--readout-error P] [--shots N] [--shot-threads N]
//!              [--mem-budget BYTES] [--opt-level N] [--time-budget MS]
//!              [--backend NAME] [--trace] [--profile] [--stats-json PATH]
//!              [--lint] [-W ID] [-A ID] [--deny-warnings] [--verify]
//! qutes verify <file.qut> [--seed N] [--max-steps N] [--time-budget MS]
//!              [--deny-warnings]
//! qutes lint   <file.qut> [-W ID] [-A ID] [--deny-warnings] [--lint-json]
//! qutes check  <file.qut>
//! qutes fmt    <file.qut>
//! qutes qasm   <file.qut> [--v3] [--seed N] [--time-budget MS] [-o out.qasm]
//! ```
//!
//! `run` executes the program and prints its `print` output; `qasm`
//! executes it and emits the accumulated circuit as OpenQASM (the
//! measurement outcomes taken during execution determine classically-
//! conditioned paths, exactly like the paper's Qiskit lowering).
//!
//! `--noise P` attaches a symmetric depolarizing fault model (rate `P`
//! per gate per touched qubit) and `--readout-error P` flips each
//! measured bit with probability `P`; with `--shots N` the accumulated
//! circuit is additionally replayed `N` times under the same model and
//! the outcome histogram printed. `--mem-budget` caps the dense
//! statevector allocation (`16 * 2^n` bytes) with a clean error instead
//! of an OOM. `--shot-threads N` sizes the worker pool for the
//! per-shot replay paths (`0` = auto from the host's available
//! parallelism, `1` = serial; histograms are bit-for-bit identical at
//! every value — see `docs/performance.md`).
//! `--backend {auto,statevector,tableau}` selects the
//! simulation engine (default `auto`: the resource estimator routes
//! Clifford-only noise-free programs onto the stabilizer tableau, which
//! scales to hundreds of qubits, and everything else onto the dense
//! statevector — see `docs/backends.md`). `--opt-level` selects the
//! circuit-optimization level used
//! for the shot replay and the `--stats` report (0 = off, 1 = gate
//! cancellation + rotation merging, 2 = additionally single-qubit gate
//! fusion; default 1).
//!
//! `verify` runs the program once (shot-free) and then replays the
//! optimizer over the accumulated circuit at levels 1 and 2, statically
//! checking every pass boundary and the end-to-end composition for
//! unitary equivalence in the cheapest exact domain that fits
//! (stabilizer tableau, phase polynomial, dense unitary ≤ 8 qubits —
//! see `docs/verification.md`). It prints the per-boundary
//! classification and the dispatch-oracle segment counts, exits
//! non-zero on any `inequivalent` verdict, and warns on `unknown`.
//! `run --verify` performs the same check at the run's `--opt-level`
//! after execution, refusing (non-zero exit) on `inequivalent`.
//!
//! `lint` runs the static analyzer (`qutes-analysis`, see
//! `docs/analysis.md`) without executing: it prints every finding with
//! source context plus a one-line resource estimate (qubits, gates,
//! depth, measurements), and exits non-zero when any finding resolves to
//! deny level. `-W <ID>` promotes a lint to warn, `-A <ID>` allows
//! (silences) it, `--deny-warnings` turns warnings into errors, and
//! `--lint-json` emits the machine-readable report instead. The same
//! flags on `run` lint first and refuse to execute a program with
//! deny-level findings.
//!
//! `--time-budget MS` bounds the whole run (parse through shot replay)
//! to a wall-clock deadline: when it expires, cooperative checkpoints
//! stop the run with a typed `deadline exceeded` error (see
//! `docs/robustness.md`). Both `run` and `lint` execute inside a
//! panic-containment boundary, so an internal fault renders as an
//! `internal error in stage …` message instead of a crash.
//!
//! The observability flags (see `docs/observability.md`) enable the
//! `qutes-obs` collector for the run: `--trace` prints the nested
//! pipeline span tree to stderr, `--profile` prints the aggregated
//! hot-path table (per-stage wall time, per-kernel apply times, per-gate
//! counts), and `--stats-json PATH` writes the full machine-readable
//! snapshot to `PATH` (`-` for stdout).

use qutes_core::{run_source, QutesError, RunConfig};
use qutes_frontend::{parse, print_program};
use qutes_qasm::{to_qasm2, to_qasm3};
use qutes_sim::NoiseModel;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  qutes run    <file.qut> [--seed N] [--max-steps N] [--stats] [--draw]\n               \
         [--noise P] [--readout-error P] [--shots N] [--shot-threads N]\n               \
         [--mem-budget BYTES] [--opt-level N] [--time-budget MS]\n               \
         [--backend NAME] [--trace] [--profile] [--stats-json PATH]\n               \
         [--lint] [-W ID] [-A ID] [--deny-warnings] [--verify]\n  \
         qutes verify <file.qut> [--seed N] [--max-steps N] [--time-budget MS]\n               \
         [--deny-warnings]\n  \
         qutes lint   <file.qut> [-W ID] [-A ID] [--deny-warnings] [--lint-json]\n  \
         qutes check  <file.qut>\n  qutes fmt    <file.qut>\n  \
         qutes qasm   <file.qut> [--v3] [--seed N] [--time-budget MS] [-o out.qasm]"
    );
    ExitCode::from(2)
}

struct Args {
    path: String,
    seed: u64,
    max_steps: u64,
    stats: bool,
    draw: bool,
    v3: bool,
    out: Option<String>,
    noise: f64,
    readout_error: f64,
    shots: usize,
    shot_threads: usize,
    mem_budget: Option<u64>,
    opt_level: u8,
    time_budget_ms: Option<u64>,
    backend: qutes_qcirc::BackendChoice,
    trace: bool,
    profile: bool,
    stats_json: Option<String>,
    lint: bool,
    warns: Vec<String>,
    allows: Vec<String>,
    deny_warnings: bool,
    lint_json: bool,
    verify: bool,
}

impl Args {
    /// True when any observability output was requested.
    fn observing(&self) -> bool {
        self.trace || self.profile || self.stats_json.is_some()
    }
}

fn parse_args(rest: &[String]) -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        seed: 0,
        max_steps: 1_000_000,
        stats: false,
        draw: false,
        v3: false,
        out: None,
        noise: 0.0,
        readout_error: 0.0,
        shots: 0,
        shot_threads: 0,
        mem_budget: None,
        opt_level: 1,
        time_budget_ms: None,
        backend: qutes_qcirc::BackendChoice::Auto,
        trace: false,
        profile: false,
        stats_json: None,
        lint: false,
        warns: Vec::new(),
        allows: Vec::new(),
        deny_warnings: false,
        lint_json: false,
        verify: false,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?;
            }
            "--max-steps" => {
                args.max_steps = it
                    .next()
                    .ok_or("--max-steps needs a value")?
                    .parse()
                    .map_err(|_| "--max-steps needs an integer")?;
            }
            "--noise" => {
                args.noise = it
                    .next()
                    .ok_or("--noise needs a probability")?
                    .parse()
                    .map_err(|_| "--noise needs a number in [0, 1]")?;
            }
            "--readout-error" => {
                args.readout_error = it
                    .next()
                    .ok_or("--readout-error needs a probability")?
                    .parse()
                    .map_err(|_| "--readout-error needs a number in [0, 1]")?;
            }
            "--shots" => {
                args.shots = it
                    .next()
                    .ok_or("--shots needs a value")?
                    .parse()
                    .map_err(|_| "--shots needs an integer")?;
            }
            "--shot-threads" => {
                args.shot_threads = it
                    .next()
                    .ok_or("--shot-threads needs a value")?
                    .parse()
                    .map_err(|_| "--shot-threads needs an integer (0 = auto)")?;
            }
            "--mem-budget" => {
                args.mem_budget = Some(
                    it.next()
                        .ok_or("--mem-budget needs a byte count")?
                        .parse()
                        .map_err(|_| "--mem-budget needs an integer byte count")?,
                );
            }
            "--opt-level" => {
                args.opt_level = it
                    .next()
                    .ok_or("--opt-level needs a value")?
                    .parse()
                    .map_err(|_| "--opt-level needs 0, 1, or 2")?;
                if args.opt_level > 2 {
                    return Err("--opt-level needs 0, 1, or 2".into());
                }
            }
            "--time-budget" => {
                args.time_budget_ms = Some(
                    it.next()
                        .ok_or("--time-budget needs a millisecond count")?
                        .parse()
                        .map_err(|_| "--time-budget needs an integer millisecond count")?,
                );
            }
            "--backend" => {
                let name = it.next().ok_or("--backend needs a name")?;
                args.backend = qutes_qcirc::BackendChoice::from_name(name).ok_or(format!(
                    "unknown backend '{name}' (choices: auto, statevector, tableau)"
                ))?;
            }
            "--lint" => args.lint = true,
            "--verify" => args.verify = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--lint-json" => args.lint_json = true,
            "-W" | "--warn" => {
                args.warns.push(lint_id(
                    it.next().ok_or("-W needs a lint id (e.g. QL003)")?,
                )?);
            }
            "-A" | "--allow" => {
                args.allows.push(lint_id(
                    it.next().ok_or("-A needs a lint id (e.g. QL101)")?,
                )?);
            }
            "--stats" => args.stats = true,
            "--trace" => args.trace = true,
            "--profile" => args.profile = true,
            "--stats-json" => {
                args.stats_json = Some(it.next().ok_or("--stats-json needs a path")?.clone());
            }
            "--draw" => args.draw = true,
            "--v3" => args.v3 = true,
            "-o" | "--out" => {
                args.out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            path => {
                if args.path.is_empty() {
                    args.path = path.to_string();
                } else {
                    return Err(format!("unexpected argument '{path}'"));
                }
            }
        }
    }
    if args.path.is_empty() {
        return Err("missing input file".into());
    }
    Ok(args)
}

/// Validates a `-W`/`-A` argument against the lint registry.
fn lint_id(id: &str) -> Result<String, String> {
    if qutes_analysis::lint_by_id(id).is_some() {
        Ok(id.to_string())
    } else {
        let known: Vec<&str> = qutes_analysis::REGISTRY.iter().map(|l| l.id).collect();
        Err(format!(
            "unknown lint '{id}' (known lints: {})",
            known.join(", ")
        ))
    }
}

/// Builds the analyzer configuration from the CLI flags.
fn lint_options(args: &Args) -> qutes_core::LintOptions {
    qutes_core::LintOptions {
        enabled: true,
        warns: args.warns.clone(),
        allows: args.allows.clone(),
        deny_warnings: args.deny_warnings,
    }
}

/// Runs the static analyzer inside a panic-containment boundary: a
/// panic in the analyzer surfaces as a rendered internal error, never
/// an abort of the CLI process.
#[allow(clippy::type_complexity)]
fn analyze_contained(
    source: &str,
    opts: &qutes_core::LintOptions,
) -> Result<
    Result<qutes_analysis::AnalysisReport, Vec<qutes_frontend::Diagnostic>>,
    qutes_supervisor::ContainedPanic,
> {
    qutes_supervisor::contain(|| {
        let _stage = qutes_supervisor::enter_stage("cli.lint");
        qutes_analysis::analyze_source(source, opts)
    })
}

/// Runs the analyzer for `run --lint`: prints findings to stderr and
/// reports whether execution may proceed.
fn lint_gate(source: &str, args: &Args) -> Result<(), ExitCode> {
    match analyze_contained(source, &lint_options(args)) {
        Err(p) => {
            eprintln!("error: {p}");
            Err(ExitCode::FAILURE)
        }
        Ok(Ok(report)) => {
            for f in &report.findings {
                eprint!("{}", f.render(source));
            }
            if report.denied().is_empty() {
                Ok(())
            } else {
                eprintln!(
                    "error: program has deny-level lints; refusing to run (silence with -A <id>)"
                );
                Err(ExitCode::FAILURE)
            }
        }
        Ok(Err(diags)) => {
            for d in diags {
                eprint!("{}", d.render(source));
            }
            Err(ExitCode::FAILURE)
        }
    }
}

/// Builds the noise model from the CLI flags, `None` when both are zero.
fn noise_from_args(args: &Args) -> Option<NoiseModel> {
    if args.noise == 0.0 && args.readout_error == 0.0 {
        return None;
    }
    Some(NoiseModel::depolarizing(args.noise).with_readout_error(args.readout_error))
}

/// Replays and verifies the optimizer over `circuit` at `level` inside
/// a panic-containment boundary (see `docs/verification.md`).
fn verify_contained(
    circuit: &qutes_qcirc::QuantumCircuit,
    level: u8,
) -> Result<qutes_analysis::OptimizationVerification, String> {
    match qutes_supervisor::contain(|| {
        let _stage = qutes_supervisor::enter_stage("cli.verify");
        qutes_analysis::verify_optimization(circuit, level)
    }) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(format!("verification could not run: {e}")),
        Err(p) => Err(p.to_string()),
    }
}

/// Compact `domain=count` summary of a boundary's verified segments.
fn domain_summary(report: &qutes_analysis::VerifyReport) -> String {
    if report.segments.is_empty() {
        return "no segments".into();
    }
    let mut counts: Vec<(&str, usize)> = Vec::new();
    for s in &report.segments {
        match counts.iter_mut().find(|(d, _)| *d == s.domain) {
            Some((_, c)) => *c += 1,
            None => counts.push((s.domain, 1)),
        }
    }
    counts
        .iter()
        .map(|(d, c)| format!("{d}={c}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders an `inequivalent` overall verdict to stderr: names the first
/// failing pass and the verifier's explanation.
fn report_inequivalent(v: &qutes_analysis::OptimizationVerification) {
    let pass = v.first_problem().map_or("pipeline", |b| b.pass);
    let detail = v
        .first_problem()
        .and_then(|b| b.report.detail.clone())
        .unwrap_or_else(|| "proven inequivalent".into());
    eprintln!(
        "error: verification failed: optimizer pass '{pass}' produced an \
         inequivalent rewrite: {detail}\n\
         this is a compiler bug, not a program error — bypass with --opt-level 0 \
         and please report the program"
    );
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))
}

/// Renders the collector snapshot per the requested observability flags.
///
/// `--trace` and `--profile` go to stderr so they compose with piped
/// program output; `--stats-json` writes the snapshot JSON to the given
/// path (`-` for stdout). This runs on **every** exit path of `run` —
/// success, typed error, deadline trip, contained panic — with
/// `aborted` recording whether the run completed; a failed run still
/// leaves its partial stage timings behind for diagnosis.
fn report_observability(args: &Args, aborted: bool) -> Result<(), String> {
    let snap = qutes_obs::snapshot();
    if args.trace {
        eprint!("{}", snap.render_trace());
    }
    if args.profile {
        eprint!("{}", snap.render_profile());
    }
    if let Some(path) = &args.stats_json {
        let json = snap.to_json_tagged(aborted);
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(path, json.as_bytes())
                .map_err(|e| format!("cannot write '{path}': {e}"))?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let source = match read(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Debug/CI builds validate every optimizer rewrite in-line; release
    // builds never consult the validator (zero overhead — see
    // docs/verification.md). Installing is idempotent.
    qutes_analysis::install_optimizer_guard();

    match cmd.as_str() {
        "run" => {
            let mut cfg = RunConfig {
                seed: args.seed,
                max_steps: args.max_steps,
                noise: noise_from_args(&args),
                shots: args.shots,
                shot_threads: args.shot_threads,
                memory_budget_bytes: args.mem_budget,
                opt_level: args.opt_level,
                observe: args.observing(),
                lint: if args.lint {
                    lint_options(&args)
                } else {
                    qutes_core::LintOptions::default()
                },
                time_budget: args.time_budget_ms.map(Duration::from_millis),
                backend: args.backend,
                ..RunConfig::default()
            };
            if args.observing() {
                // Enable before the lint gate so `stage.analyze` and
                // `stage.typecheck` land in the same trace/profile.
                qutes_obs::reset();
                qutes_obs::set_enabled(true);
            }
            if args.lint {
                if let Err(code) = lint_gate(&source, &args) {
                    if args.observing() {
                        let _ = report_observability(&args, true);
                    }
                    return code;
                }
            }
            // Resolve `--backend auto` from the estimator's static gate
            // composition before execution, so the resolved engine shows
            // up in `[stats]` and the obs snapshot even when the run is
            // refused pre-flight (see docs/backends.md).
            cfg.backend = qutes::resolve_backend(&source, &cfg);
            // Containment boundary: a panic anywhere below surfaces as a
            // typed internal error naming the stage, never an abort.
            let result = qutes_supervisor::contain(|| run_source(&source, &cfg))
                .unwrap_or_else(|p| Err(QutesError::from(p)));
            match result {
                Ok(out) => {
                    for line in &out.output {
                        println!("{line}");
                    }
                    if args.draw {
                        print!("{}", qutes_qcirc::draw(&out.circuit));
                    }
                    if let Some(counts) = &out.counts {
                        if out.degraded {
                            println!(
                                "-- histogram ({} of {} shots; degraded) --",
                                counts.shots(),
                                args.shots
                            );
                        } else {
                            println!("-- histogram ({} shots) --", counts.shots());
                        }
                        print!("{counts}");
                    }
                    if out.degraded {
                        if let Some(reason) = &out.stop_reason {
                            eprintln!("warning: run degraded: {reason}");
                        } else {
                            eprintln!("warning: run degraded");
                        }
                    }
                    if args.stats {
                        let stats = out.circuit.stats();
                        eprintln!(
                            "[stats] backend={} qubits={} measurements={} ops={} depth={} \
                             shot_threads={}",
                            cfg.backend,
                            out.qubits_used,
                            out.measurements,
                            stats.size,
                            stats.depth,
                            qutes_qcirc::execute::shot_pool::resolve_workers(
                                args.shot_threads,
                                args.shots
                            )
                        );
                        match qutes_qcirc::optimize(&out.circuit, args.opt_level) {
                            Ok((_, r)) => eprintln!(
                                "[opt] level={} gates {} -> {} depth {} -> {} \
                                 (cancelled={} merged={} fused={} reduction={:.1}%)",
                                r.level,
                                r.gates_before,
                                r.gates_after,
                                r.depth_before,
                                r.depth_after,
                                r.cancelled,
                                r.merged,
                                r.fused,
                                100.0 * r.gate_reduction()
                            ),
                            Err(e) => eprintln!("[opt] failed: {e}"),
                        }
                    }
                    // `--verify`: translation-validate the optimizer
                    // over the circuit this run accumulated, at the
                    // run's own --opt-level. Refuse (non-zero exit) on
                    // a proven-inequivalent rewrite; an `unknown` is
                    // sound to keep and only warns.
                    let verify_failed = if args.verify {
                        match verify_contained(&out.circuit, args.opt_level) {
                            Err(e) => {
                                eprintln!("error: {e}");
                                true
                            }
                            Ok(v) => match v.verdict {
                                qutes_analysis::Verdict::Inequivalent => {
                                    report_inequivalent(&v);
                                    true
                                }
                                qutes_analysis::Verdict::Unknown => {
                                    let unknown = v
                                        .boundaries
                                        .iter()
                                        .filter(|b| {
                                            b.report.verdict == qutes_analysis::Verdict::Unknown
                                        })
                                        .count();
                                    eprintln!(
                                        "warning: verification inconclusive: {unknown} of {} \
                                         rewrite boundaries exceeded every exact domain \
                                         (sound to run; see docs/verification.md)",
                                        v.boundaries.len()
                                    );
                                    false
                                }
                                qutes_analysis::Verdict::Equivalent => false,
                            },
                        }
                    } else {
                        false
                    };
                    if args.observing() {
                        if let Err(e) = report_observability(&args, verify_failed) {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    if verify_failed {
                        return ExitCode::FAILURE;
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    // Capacity/backend refusals depend on which engine's
                    // limits were consulted — name it, so "too many
                    // qubits" under `--backend statevector` is
                    // distinguishable from the same program overflowing
                    // the tableau cap.
                    let resource_refusal = matches!(
                        &e,
                        QutesError::Sim(qutes_sim::SimError::TooManyQubits(_))
                            | QutesError::Sim(qutes_sim::SimError::AllocationFailed { .. })
                            | QutesError::Circuit(qutes_qcirc::CircError::ResourceLimit { .. })
                            | QutesError::Circuit(
                                qutes_qcirc::CircError::BackendUnsupported { .. }
                            )
                    );
                    if resource_refusal {
                        eprintln!("error: refused on the '{}' backend:", cfg.backend);
                    }
                    eprintln!("{}", e.render(&source));
                    if args.observing() {
                        // Flush the partial snapshot with the abort
                        // marker so a bounded/failed run still leaves
                        // its stage timings behind (the `backend.*`
                        // counters record the attempted engine).
                        let _ = report_observability(&args, true);
                    }
                    ExitCode::FAILURE
                }
            }
        }
        "verify" => {
            let mut cfg = RunConfig {
                seed: args.seed,
                max_steps: args.max_steps,
                time_budget: args.time_budget_ms.map(Duration::from_millis),
                ..RunConfig::default()
            };
            // Resolve the engine exactly like `run` would: wide Clifford
            // programs (e.g. examples/programs/ghz_100.qut) only execute
            // on the tableau.
            cfg.backend = qutes::resolve_backend(&source, &cfg);
            let result = qutes_supervisor::contain(|| run_source(&source, &cfg))
                .unwrap_or_else(|p| Err(QutesError::from(p)));
            let out = match result {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("{}", e.render(&source));
                    return ExitCode::FAILURE;
                }
            };
            let d = qutes_analysis::classify_dispatch(&out.circuit);
            println!(
                "dispatch: {} segment(s), {} clifford{}",
                d.segments,
                d.clifford_segments,
                if d.all_clifford {
                    " (tableau-eligible)"
                } else {
                    ""
                }
            );
            let mut worst = qutes_analysis::Verdict::Equivalent;
            for level in 1..=2u8 {
                match verify_contained(&out.circuit, level) {
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                    Ok(v) => {
                        println!("opt-level {level}: {}", v.verdict.name());
                        for b in &v.boundaries {
                            println!(
                                "  [{}] {:<12} {:<12} {}",
                                b.index,
                                b.pass,
                                b.report.verdict.name(),
                                domain_summary(&b.report)
                            );
                        }
                        worst = worst.join(v.verdict);
                        if v.verdict == qutes_analysis::Verdict::Inequivalent {
                            report_inequivalent(&v);
                        }
                    }
                }
            }
            match worst {
                qutes_analysis::Verdict::Inequivalent => ExitCode::FAILURE,
                qutes_analysis::Verdict::Unknown => {
                    eprintln!(
                        "warning: some rewrite boundaries exceeded every exact domain \
                         (sound unknown; see docs/verification.md)"
                    );
                    // Mirrors lint: strict callers (CI) can insist on a
                    // full proof rather than a sound "too wide to check".
                    if args.deny_warnings {
                        eprintln!("error: unverified rewrite rejected by --deny-warnings");
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                qutes_analysis::Verdict::Equivalent => ExitCode::SUCCESS,
            }
        }
        "lint" => match analyze_contained(&source, &lint_options(&args)) {
            Err(p) => {
                eprintln!("error: {p}");
                ExitCode::FAILURE
            }
            Ok(Ok(report)) => {
                if args.lint_json {
                    print!("{}", report.to_json(&source));
                } else {
                    print!("{}", report.render(&source));
                }
                if report.denied().is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Ok(Err(diags)) => {
                for d in diags {
                    eprint!("{}", d.render(&source));
                }
                ExitCode::FAILURE
            }
        },
        "check" => match parse(&source) {
            Ok(program) => {
                let diags = qutes_core::check_program(&program);
                if diags.is_empty() {
                    println!("ok");
                    ExitCode::SUCCESS
                } else {
                    for d in diags {
                        eprint!("{}", d.render(&source));
                    }
                    ExitCode::FAILURE
                }
            }
            Err(diags) => {
                for d in diags {
                    eprint!("{}", d.render(&source));
                }
                ExitCode::FAILURE
            }
        },
        "fmt" => match parse(&source) {
            Ok(program) => {
                print!("{}", print_program(&program));
                ExitCode::SUCCESS
            }
            Err(diags) => {
                for d in diags {
                    eprint!("{}", d.render(&source));
                }
                ExitCode::FAILURE
            }
        },
        "qasm" => {
            let cfg = RunConfig {
                seed: args.seed,
                max_steps: args.max_steps,
                time_budget: args.time_budget_ms.map(Duration::from_millis),
                ..RunConfig::default()
            };
            let result = qutes_supervisor::contain(|| run_source(&source, &cfg))
                .unwrap_or_else(|p| Err(QutesError::from(p)));
            match result {
                Ok(out) => {
                    let rendered = if args.v3 {
                        to_qasm3(&out.circuit)
                    } else {
                        to_qasm2(&out.circuit)
                    };
                    match rendered {
                        Ok(text) => {
                            if let Some(path) = &args.out {
                                if let Err(e) = std::fs::write(path, &text) {
                                    eprintln!("error: cannot write '{path}': {e}");
                                    return ExitCode::FAILURE;
                                }
                            } else {
                                print!("{text}");
                            }
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("error: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                Err(e) => {
                    eprintln!("{}", e.render(&source));
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("error: unknown command '{other}'");
            usage()
        }
    }
}
