//! Error type for QASM export/import.

use qutes_qcirc::CircError;
use qutes_supervisor::StopReason;
use std::fmt;

/// Errors produced while serialising or parsing OpenQASM.
#[derive(Debug)]
pub enum QasmError {
    /// A qubit index belongs to no register (export).
    UnmappedQubit(usize),
    /// A classical bit belongs to no register (export).
    UnmappedClbit(usize),
    /// The construct cannot be expressed in the target dialect.
    Unsupported(&'static str),
    /// Underlying circuit error.
    Circuit(CircError),
    /// Parse error at `line` with a message (import).
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The import was cut short by a deadline or cancellation.
    Interrupted(StopReason),
    /// A panic contained at the importer boundary (see
    /// `qutes_supervisor::contain`); no panic crosses the library API.
    Internal {
        /// Pipeline stage active when the panic fired.
        stage: &'static str,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::UnmappedQubit(q) => write!(f, "qubit {q} is not part of any register"),
            QasmError::UnmappedClbit(c) => write!(f, "clbit {c} is not part of any register"),
            QasmError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            QasmError::Circuit(e) => write!(f, "circuit error: {e}"),
            QasmError::Parse { line, message } => {
                write!(f, "QASM parse error, line {line}: {message}")
            }
            QasmError::Interrupted(reason) => write!(f, "{reason}"),
            QasmError::Internal { stage, message } => {
                write!(f, "internal error in stage `{stage}`: {message}")
            }
        }
    }
}

impl std::error::Error for QasmError {}

impl From<CircError> for QasmError {
    fn from(e: CircError) -> Self {
        match e {
            CircError::Interrupted(reason) => QasmError::Interrupted(reason),
            other => QasmError::Circuit(other),
        }
    }
}

/// Convenience alias for QASM operations.
pub type QasmResult<T> = Result<T, QasmError>;
