//! # qutes-qasm
//!
//! OpenQASM 2.0 / 3.0 interoperability for Qutes circuits. The paper's
//! future-work section (§6) calls out "methods to export Qutes code to
//! widely used quantum programming languages, particularly Qiskit and
//! QASM"; this crate provides that bridge for the circuit IR, plus a
//! QASM 2 importer so exported circuits round-trip.
//!
//! ```
//! use qutes_qcirc::QuantumCircuit;
//! use qutes_qasm::{to_qasm2, from_qasm2};
//!
//! let mut c = QuantumCircuit::new();
//! let q = c.add_qreg("q", 2);
//! c.h(q.qubit(0)).unwrap();
//! c.cx(q.qubit(0), q.qubit(1)).unwrap();
//!
//! let text = to_qasm2(&c).unwrap();
//! let back = from_qasm2(&text).unwrap();
//! assert_eq!(back.num_qubits(), 2);
//! ```

// Failures surface as `QasmError`, never abort: the unwrap/expect/panic
// clippy denies come from `[workspace.lints]` in the root Cargo.toml.

pub mod error;
pub mod export;
pub mod import;

pub use error::{QasmError, QasmResult};
pub use export::{to_qasm2, to_qasm3};
pub use import::{from_qasm2, from_qasm2_with_interrupt};
