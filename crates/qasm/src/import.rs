//! A minimal OpenQASM 2.0 importer covering the dialect the exporter
//! emits (plus whole-register gate broadcast), so circuits round-trip.

use crate::error::{QasmError, QasmResult};
use qutes_qcirc::{ClassicalRegister, Gate, QuantumCircuit, QuantumRegister};
use qutes_supervisor::{contain, enter_stage, failpoint, Interrupt};
use std::collections::HashMap;

/// Parses OpenQASM 2.0 source into a circuit.
///
/// Crash-contained: any panic inside the importer is caught at this
/// boundary and returned as [`QasmError::Internal`].
pub fn from_qasm2(src: &str) -> QasmResult<QuantumCircuit> {
    from_qasm2_with_interrupt(src, &Interrupt::new())
}

/// [`from_qasm2`] with cooperative cancellation: the handle is checked
/// at statement boundaries, so an adversarially long input cannot
/// outlive its wall-clock budget. A trip returns
/// [`QasmError::Interrupted`].
pub fn from_qasm2_with_interrupt(src: &str, intr: &Interrupt) -> QasmResult<QuantumCircuit> {
    contain(|| {
        let _stage = enter_stage("qasm.import");
        let _ = failpoint("qasm.import");
        Importer::new().parse(src, intr)
    })
    .map_err(|p| QasmError::Internal {
        stage: p.stage,
        message: p.message,
    })?
}

struct Importer {
    circuit: QuantumCircuit,
    qregs: HashMap<String, QuantumRegister>,
    cregs: HashMap<String, ClassicalRegister>,
}

/// A parsed operand: a full register or one element of it.
enum Operand {
    Whole(String),
    Indexed(String, usize),
}

impl Importer {
    fn new() -> Self {
        Importer {
            circuit: QuantumCircuit::new(),
            qregs: HashMap::new(),
            cregs: HashMap::new(),
        }
    }

    fn parse(mut self, src: &str, intr: &Interrupt) -> QasmResult<QuantumCircuit> {
        // Statements end with ';'. Track line numbers for diagnostics.
        let mut line_no = 1usize;
        let mut stmt = String::new();
        let mut stmt_line = 1usize;
        let mut intr_ck = 0u64;
        let mut chars = src.chars().peekable();
        while let Some(ch) = chars.next() {
            match ch {
                '\n' => {
                    line_no += 1;
                    stmt.push(' ');
                }
                '/' if chars.peek() == Some(&'/') => {
                    // line comment
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line_no += 1;
                            break;
                        }
                    }
                }
                ';' => {
                    intr.checkpoint_named(&mut intr_ck, 16, "stage.qasm.checkpoints")
                        .map_err(QasmError::Interrupted)?;
                    let trimmed = stmt.trim().to_string();
                    if !trimmed.is_empty() {
                        self.statement(&trimmed, stmt_line)?;
                    }
                    stmt.clear();
                    stmt_line = line_no;
                }
                _ => {
                    if stmt.trim().is_empty() {
                        stmt_line = line_no;
                    }
                    stmt.push(ch);
                }
            }
        }
        if !stmt.trim().is_empty() {
            return Err(QasmError::Parse {
                line: stmt_line,
                message: format!("unterminated statement: '{}'", stmt.trim()),
            });
        }
        Ok(self.circuit)
    }

    fn err<T>(&self, line: usize, message: impl Into<String>) -> QasmResult<T> {
        Err(QasmError::Parse {
            line,
            message: message.into(),
        })
    }

    fn statement(&mut self, stmt: &str, line: usize) -> QasmResult<()> {
        if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
            return Ok(());
        }
        if let Some(rest) = stmt.strip_prefix("qreg ") {
            let (name, size) = parse_decl(rest, line)?;
            let reg = self.circuit.add_qreg(&name, size);
            self.qregs.insert(name, reg);
            return Ok(());
        }
        if let Some(rest) = stmt.strip_prefix("creg ") {
            let (name, size) = parse_decl(rest, line)?;
            let reg = self.circuit.add_creg(&name, size);
            self.cregs.insert(name, reg);
            return Ok(());
        }
        if let Some(rest) = stmt.strip_prefix("if") {
            // if(creg==int) gate ...
            let rest = rest.trim_start();
            let close = rest.find(')').ok_or(QasmError::Parse {
                line,
                message: "missing ')' in if".into(),
            })?;
            let cond = &rest[1..close];
            let inner = rest[close + 1..].trim();
            let (reg_name, value) = cond.split_once("==").ok_or(QasmError::Parse {
                line,
                message: "expected 'reg==value' condition".into(),
            })?;
            let reg = self
                .cregs
                .get(reg_name.trim())
                .cloned()
                .ok_or(QasmError::Parse {
                    line,
                    message: format!("unknown creg '{}'", reg_name.trim()),
                })?;
            if reg.len() != 1 {
                return self.err(line, "only single-bit creg conditions are supported");
            }
            let value: usize = value.trim().parse().map_err(|_| QasmError::Parse {
                line,
                message: format!("bad condition value '{}'", value.trim()),
            })?;
            let gates = self.gate_statement(inner, line)?;
            for g in gates {
                if !g.is_unitary() {
                    return self.err(line, "conditioned instruction must be unitary");
                }
                self.circuit
                    .append(Gate::Conditional {
                        clbit: reg.bit(0),
                        value: value != 0,
                        gate: Box::new(g),
                    })
                    .map_err(QasmError::Circuit)?;
            }
            return Ok(());
        }
        let gates = self.gate_statement(stmt, line)?;
        for g in gates {
            self.circuit.append(g).map_err(QasmError::Circuit)?;
        }
        Ok(())
    }

    /// Parses one gate/measure/reset/barrier statement into concrete gates
    /// (whole-register operands are broadcast).
    fn gate_statement(&mut self, stmt: &str, line: usize) -> QasmResult<Vec<Gate>> {
        if let Some(rest) = stmt.strip_prefix("measure ") {
            let (qs, cs) = rest.split_once("->").ok_or(QasmError::Parse {
                line,
                message: "measure requires '->'".into(),
            })?;
            let qbits = self.resolve_qubits(qs.trim(), line)?;
            let cbits = self.resolve_clbits(cs.trim(), line)?;
            if qbits.len() != cbits.len() {
                return self.err(line, "measure operand sizes differ");
            }
            return Ok(qbits
                .into_iter()
                .zip(cbits)
                .map(|(q, c)| Gate::Measure { qubit: q, clbit: c })
                .collect());
        }
        if let Some(rest) = stmt.strip_prefix("reset ") {
            let qs = self.resolve_qubits(rest.trim(), line)?;
            return Ok(qs.into_iter().map(Gate::Reset).collect());
        }
        if let Some(rest) = stmt.strip_prefix("barrier") {
            let rest = rest.trim();
            let mut qubits = Vec::new();
            if !rest.is_empty() {
                for part in rest.split(',') {
                    qubits.extend(self.resolve_qubits(part.trim(), line)?);
                }
            }
            return Ok(vec![Gate::Barrier(qubits)]);
        }

        // General form: name(params)? operand (, operand)*
        let (head, args) = match stmt.find([' ', '(']) {
            Some(_) => {
                let (name_end, params, rest) = if let Some(p) = stmt.find('(') {
                    let close = stmt.rfind(')').ok_or(QasmError::Parse {
                        line,
                        message: "missing ')'".into(),
                    })?;
                    (
                        p,
                        parse_params(&stmt[p + 1..close], line)?,
                        stmt[close + 1..].trim(),
                    )
                } else {
                    let sp = stmt.find(' ').ok_or(QasmError::Parse {
                        line,
                        message: format!("cannot parse statement '{stmt}'"),
                    })?;
                    (sp, Vec::new(), stmt[sp + 1..].trim())
                };
                ((stmt[..name_end].trim().to_string(), params), rest)
            }
            None => return self.err(line, format!("cannot parse statement '{stmt}'")),
        };
        let (name, params) = head;

        // Resolve each operand to a list of qubits; broadcast whole regs.
        let operand_strs: Vec<&str> = args.split(',').map(|s| s.trim()).collect();
        let mut operands: Vec<Vec<usize>> = Vec::new();
        for o in &operand_strs {
            operands.push(self.resolve_qubits(o, line)?);
        }
        let broadcast = operands.iter().map(|v| v.len()).max().unwrap_or(1);
        for v in &operands {
            if v.len() != 1 && v.len() != broadcast {
                return self.err(line, "mismatched register sizes in broadcast");
            }
        }
        let pick = |v: &Vec<usize>, i: usize| if v.len() == 1 { v[0] } else { v[i] };

        let mut gates = Vec::new();
        for i in 0..broadcast {
            let qs: Vec<usize> = operands.iter().map(|v| pick(v, i)).collect();
            gates.push(build_gate(&name, &params, &qs, line)?);
        }
        Ok(gates)
    }

    fn resolve_qubits(&self, operand: &str, line: usize) -> QasmResult<Vec<usize>> {
        match parse_operand(operand, line)? {
            Operand::Whole(name) => {
                let reg = self.qregs.get(&name).ok_or(QasmError::Parse {
                    line,
                    message: format!("unknown qreg '{name}'"),
                })?;
                Ok(reg.qubits())
            }
            Operand::Indexed(name, i) => {
                let reg = self.qregs.get(&name).ok_or(QasmError::Parse {
                    line,
                    message: format!("unknown qreg '{name}'"),
                })?;
                if i >= reg.len() {
                    return self.err(line, format!("index {i} out of range for qreg '{name}'"));
                }
                Ok(vec![reg.qubit(i)])
            }
        }
    }

    fn resolve_clbits(&self, operand: &str, line: usize) -> QasmResult<Vec<usize>> {
        match parse_operand(operand, line)? {
            Operand::Whole(name) => {
                let reg = self.cregs.get(&name).ok_or(QasmError::Parse {
                    line,
                    message: format!("unknown creg '{name}'"),
                })?;
                Ok(reg.bits())
            }
            Operand::Indexed(name, i) => {
                let reg = self.cregs.get(&name).ok_or(QasmError::Parse {
                    line,
                    message: format!("unknown creg '{name}'"),
                })?;
                if i >= reg.len() {
                    return self.err(line, format!("index {i} out of range for creg '{name}'"));
                }
                Ok(vec![reg.bit(i)])
            }
        }
    }
}

fn parse_decl(rest: &str, line: usize) -> QasmResult<(String, usize)> {
    // name[size]
    let open = rest.find('[').ok_or(QasmError::Parse {
        line,
        message: "register declaration needs [size]".into(),
    })?;
    let close = rest.find(']').ok_or(QasmError::Parse {
        line,
        message: "missing ']'".into(),
    })?;
    let name = rest[..open].trim().to_string();
    let size: usize = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| QasmError::Parse {
            line,
            message: format!("bad register size '{}'", &rest[open + 1..close]),
        })?;
    Ok((name, size))
}

fn parse_operand(s: &str, line: usize) -> QasmResult<Operand> {
    if let Some(open) = s.find('[') {
        let close = s.find(']').ok_or(QasmError::Parse {
            line,
            message: "missing ']'".into(),
        })?;
        let idx: usize = s[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| QasmError::Parse {
                line,
                message: format!("bad index in '{s}'"),
            })?;
        Ok(Operand::Indexed(s[..open].trim().to_string(), idx))
    } else {
        Ok(Operand::Whole(s.trim().to_string()))
    }
}

fn parse_params(s: &str, line: usize) -> QasmResult<Vec<f64>> {
    s.split(',').map(|p| eval_expr(p.trim(), line)).collect()
}

/// Evaluates a constant arithmetic expression with `pi`, `+ - * /`, unary
/// minus, and parentheses.
fn eval_expr(s: &str, line: usize) -> QasmResult<f64> {
    let mut p = ExprParser {
        chars: s.chars().collect(),
        pos: 0,
        line,
        src: s,
    };
    let v = p.expr()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(QasmError::Parse {
            line,
            message: format!("trailing characters in expression '{s}'"),
        });
    }
    Ok(v)
}

struct ExprParser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    src: &'a str,
}

impl ExprParser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn bad<T>(&self) -> QasmResult<T> {
        Err(QasmError::Parse {
            line: self.line,
            message: format!("bad expression '{}'", self.src),
        })
    }

    fn expr(&mut self) -> QasmResult<f64> {
        let mut v = self.term()?;
        loop {
            match self.peek() {
                Some('+') => {
                    self.pos += 1;
                    v += self.term()?;
                }
                Some('-') => {
                    self.pos += 1;
                    v -= self.term()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn term(&mut self) -> QasmResult<f64> {
        let mut v = self.factor()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    v *= self.factor()?;
                }
                Some('/') => {
                    self.pos += 1;
                    v /= self.factor()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn factor(&mut self) -> QasmResult<f64> {
        match self.peek() {
            Some('-') => {
                self.pos += 1;
                Ok(-self.factor()?)
            }
            Some('(') => {
                self.pos += 1;
                let v = self.expr()?;
                if self.peek() == Some(')') {
                    self.pos += 1;
                    Ok(v)
                } else {
                    self.bad()
                }
            }
            Some(c) if c.is_ascii_digit() || c == '.' => {
                let start = self.pos;
                while self.pos < self.chars.len()
                    && (self.chars[self.pos].is_ascii_digit()
                        || self.chars[self.pos] == '.'
                        || self.chars[self.pos] == 'e'
                        || (self.chars[self.pos] == '-'
                            && self.pos > start
                            && self.chars[self.pos - 1] == 'e'))
                {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                text.parse().map_err(|_| QasmError::Parse {
                    line: self.line,
                    message: format!("bad number '{text}'"),
                })
            }
            Some(c) if c.is_ascii_alphabetic() => {
                let start = self.pos;
                while self.pos < self.chars.len() && self.chars[self.pos].is_ascii_alphanumeric() {
                    self.pos += 1;
                }
                let word: String = self.chars[start..self.pos].iter().collect();
                if word == "pi" {
                    Ok(std::f64::consts::PI)
                } else {
                    self.bad()
                }
            }
            _ => self.bad(),
        }
    }
}

fn build_gate(name: &str, params: &[f64], qs: &[usize], line: usize) -> QasmResult<Gate> {
    let need = |n: usize, p: usize| -> QasmResult<()> {
        if qs.len() != n || params.len() != p {
            Err(QasmError::Parse {
                line,
                message: format!(
                    "gate '{name}' expects {n} qubits / {p} params, got {} / {}",
                    qs.len(),
                    params.len()
                ),
            })
        } else {
            Ok(())
        }
    };
    Ok(match name {
        "h" => {
            need(1, 0)?;
            Gate::H(qs[0])
        }
        "x" => {
            need(1, 0)?;
            Gate::X(qs[0])
        }
        "y" => {
            need(1, 0)?;
            Gate::Y(qs[0])
        }
        "z" => {
            need(1, 0)?;
            Gate::Z(qs[0])
        }
        "s" => {
            need(1, 0)?;
            Gate::S(qs[0])
        }
        "sdg" => {
            need(1, 0)?;
            Gate::Sdg(qs[0])
        }
        "t" => {
            need(1, 0)?;
            Gate::T(qs[0])
        }
        "tdg" => {
            need(1, 0)?;
            Gate::Tdg(qs[0])
        }
        "sx" => {
            need(1, 0)?;
            Gate::SX(qs[0])
        }
        "sxdg" => {
            need(1, 0)?;
            Gate::SXdg(qs[0])
        }
        "id" => {
            need(1, 0)?;
            // Identity: emit a zero-rotation (kept so op counts match).
            Gate::RZ {
                target: qs[0],
                theta: 0.0,
            }
        }
        "p" | "u1" => {
            need(1, 1)?;
            Gate::Phase {
                target: qs[0],
                lambda: params[0],
            }
        }
        "rx" => {
            need(1, 1)?;
            Gate::RX {
                target: qs[0],
                theta: params[0],
            }
        }
        "ry" => {
            need(1, 1)?;
            Gate::RY {
                target: qs[0],
                theta: params[0],
            }
        }
        "rz" => {
            need(1, 1)?;
            Gate::RZ {
                target: qs[0],
                theta: params[0],
            }
        }
        "u2" => {
            need(1, 2)?;
            Gate::U {
                target: qs[0],
                theta: std::f64::consts::FRAC_PI_2,
                phi: params[0],
                lambda: params[1],
            }
        }
        "u" | "u3" => {
            need(1, 3)?;
            Gate::U {
                target: qs[0],
                theta: params[0],
                phi: params[1],
                lambda: params[2],
            }
        }
        "cx" | "CX" => {
            need(2, 0)?;
            Gate::CX {
                control: qs[0],
                target: qs[1],
            }
        }
        "cy" => {
            need(2, 0)?;
            Gate::CY {
                control: qs[0],
                target: qs[1],
            }
        }
        "cz" => {
            need(2, 0)?;
            Gate::CZ {
                control: qs[0],
                target: qs[1],
            }
        }
        "cp" | "cu1" => {
            need(2, 1)?;
            Gate::CPhase {
                control: qs[0],
                target: qs[1],
                lambda: params[0],
            }
        }
        "swap" => {
            need(2, 0)?;
            Gate::Swap { a: qs[0], b: qs[1] }
        }
        "ccx" => {
            need(3, 0)?;
            Gate::CCX {
                c0: qs[0],
                c1: qs[1],
                target: qs[2],
            }
        }
        "cswap" => {
            need(3, 0)?;
            Gate::CSwap {
                control: qs[0],
                a: qs[1],
                b: qs[2],
            }
        }
        other => {
            return Err(QasmError::Parse {
                line,
                message: format!("unknown gate '{other}'"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bell() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            creg c[2];
            h q[0];
            cx q[0],q[1];
            measure q[0] -> c[0];
            measure q[1] -> c[1];
        "#;
        let c = from_qasm2(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_clbits(), 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.ops()[0], Gate::H(0));
        assert_eq!(
            c.ops()[1],
            Gate::CX {
                control: 0,
                target: 1
            }
        );
    }

    #[test]
    fn broadcast_whole_register() {
        let src = "OPENQASM 2.0; qreg q[3]; h q; measure q -> c;";
        // measure needs creg; add it
        let src = src.replace("qreg q[3];", "qreg q[3]; creg c[3];");
        let c = from_qasm2(&src).unwrap();
        assert_eq!(c.ops()[..3], [Gate::H(0), Gate::H(1), Gate::H(2)]);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn parses_parameterised_gates() {
        let src = "OPENQASM 2.0; qreg q[1]; u1(pi/2) q[0]; rx(-pi/4) q[0]; u3(1.5,0.25,-0.5) q[0];";
        let c = from_qasm2(src).unwrap();
        assert!(matches!(c.ops()[0], Gate::Phase { lambda, .. }
            if (lambda - std::f64::consts::FRAC_PI_2).abs() < 1e-12));
        assert!(matches!(c.ops()[1], Gate::RX { theta, .. }
            if (theta + std::f64::consts::FRAC_PI_4).abs() < 1e-12));
        assert!(matches!(c.ops()[2], Gate::U { theta, .. } if (theta - 1.5).abs() < 1e-12));
    }

    #[test]
    fn expression_arithmetic() {
        assert!((eval_expr("2*pi/4", 0).unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((eval_expr("(1+2)*3", 0).unwrap() - 9.0).abs() < 1e-12);
        assert!((eval_expr("-pi", 0).unwrap() + std::f64::consts::PI).abs() < 1e-12);
        assert!((eval_expr("1e-3", 0).unwrap() - 0.001).abs() < 1e-15);
        assert!(eval_expr("foo", 0).is_err());
        assert!(eval_expr("1+", 0).is_err());
    }

    #[test]
    fn parses_conditional() {
        let src = "OPENQASM 2.0; qreg q[2]; creg f[1]; measure q[0] -> f[0]; if(f==1) x q[1];";
        let c = from_qasm2(src).unwrap();
        assert!(matches!(
            c.ops()[1],
            Gate::Conditional {
                clbit: 0,
                value: true,
                ..
            }
        ));
    }

    #[test]
    fn reports_line_numbers() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nbadgate q[0];";
        let err = from_qasm2(src).unwrap_err();
        match err {
            QasmError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("badgate"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_indices_and_unknown_regs() {
        assert!(from_qasm2("OPENQASM 2.0; qreg q[1]; h q[5];").is_err());
        assert!(from_qasm2("OPENQASM 2.0; h nope[0];").is_err());
        assert!(from_qasm2("OPENQASM 2.0; qreg q[1]; h q[0]").is_err()); // missing ';'
    }

    #[test]
    fn barrier_and_reset() {
        let src = "OPENQASM 2.0; qreg q[2]; barrier q; reset q[1];";
        let c = from_qasm2(src).unwrap();
        assert_eq!(c.ops()[0], Gate::Barrier(vec![0, 1]));
        assert_eq!(c.ops()[1], Gate::Reset(1));
    }
}
