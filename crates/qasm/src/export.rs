//! OpenQASM 2.0 and 3.0 serialisation of circuits.
//!
//! The paper lists "methods to export Qutes code to … Qiskit and QASM" as
//! a key interoperability goal (§6); this module implements it for the
//! circuit IR. QASM 2 targets `qelib1.inc`; gates the include file lacks
//! (`sx`, `sxdg`, `p`, `cp`, `u`) are emitted via their `u3`/`u1`/`cu1`
//! aliases. Multi-controlled gates are decomposed to the Standard basis
//! first.

use crate::error::{QasmError, QasmResult};
use qutes_qcirc::{transpile, Basis, Gate, QuantumCircuit};
use std::fmt::Write as _;

/// Finds `(register_name, local_index)` for a global qubit index.
fn qubit_ref(circuit: &QuantumCircuit, q: usize) -> QasmResult<String> {
    for r in circuit.qregs() {
        if q >= r.offset() && q < r.offset() + r.len() {
            return Ok(format!("{}[{}]", sanitize(r.name()), q - r.offset()));
        }
    }
    Err(QasmError::UnmappedQubit(q))
}

fn clbit_ref(circuit: &QuantumCircuit, c: usize) -> QasmResult<String> {
    for r in circuit.cregs() {
        if c >= r.offset() && c < r.offset() + r.len() {
            return Ok(format!("{}[{}]", sanitize(r.name()), c - r.offset()));
        }
    }
    Err(QasmError::UnmappedClbit(c))
}

/// QASM identifiers must start with a lowercase letter and use word chars.
fn sanitize(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            if i == 0 && !ch.is_ascii_lowercase() {
                out.push('v');
            }
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('v');
    }
    out
}

fn fmt_f(x: f64) -> String {
    // Shortest representation that round-trips.
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("nan") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Serialises to OpenQASM 2.0. The circuit is first lowered to the
/// Standard basis (so only `qelib1`-expressible gates remain).
pub fn to_qasm2(circuit: &QuantumCircuit) -> QasmResult<String> {
    let lowered = transpile(circuit, Basis::Standard).map_err(QasmError::Circuit)?;
    let mut s = String::new();
    let _ = writeln!(s, "// {}", lowered.name());
    let _ = writeln!(s, "OPENQASM 2.0;");
    let _ = writeln!(s, "include \"qelib1.inc\";");
    for r in lowered.qregs() {
        if !r.is_empty() {
            let _ = writeln!(s, "qreg {}[{}];", sanitize(r.name()), r.len());
        }
    }
    for r in lowered.cregs() {
        if !r.is_empty() {
            let _ = writeln!(s, "creg {}[{}];", sanitize(r.name()), r.len());
        }
    }
    for g in lowered.ops() {
        emit_qasm2_gate(&lowered, g, &mut s)?;
    }
    Ok(s)
}

fn emit_qasm2_gate(c: &QuantumCircuit, g: &Gate, s: &mut String) -> QasmResult<()> {
    use Gate::*;
    let q = |i: usize| qubit_ref(c, i);
    match g {
        H(a) | X(a) | Y(a) | Z(a) | S(a) | Sdg(a) | T(a) | Tdg(a) => {
            let _ = writeln!(s, "{} {};", g.name(), q(*a)?);
        }
        SX(a) => {
            // qelib1 lacks sx; u3(pi/2,-pi/2,pi/2) is sx up to global phase.
            let _ = writeln!(s, "u3(pi/2,-pi/2,pi/2) {};", q(*a)?);
        }
        SXdg(a) => {
            let _ = writeln!(s, "u3(pi/2,pi/2,-pi/2) {};", q(*a)?);
        }
        Phase { target, lambda } => {
            let _ = writeln!(s, "u1({}) {};", fmt_f(*lambda), q(*target)?);
        }
        RX { target, theta } => {
            let _ = writeln!(s, "rx({}) {};", fmt_f(*theta), q(*target)?);
        }
        RY { target, theta } => {
            let _ = writeln!(s, "ry({}) {};", fmt_f(*theta), q(*target)?);
        }
        RZ { target, theta } => {
            let _ = writeln!(s, "rz({}) {};", fmt_f(*theta), q(*target)?);
        }
        U {
            target,
            theta,
            phi,
            lambda,
        } => {
            let _ = writeln!(
                s,
                "u3({},{},{}) {};",
                fmt_f(*theta),
                fmt_f(*phi),
                fmt_f(*lambda),
                q(*target)?
            );
        }
        CX { control, target } => {
            let _ = writeln!(s, "cx {},{};", q(*control)?, q(*target)?);
        }
        CY { control, target } => {
            let _ = writeln!(s, "cy {},{};", q(*control)?, q(*target)?);
        }
        CZ { control, target } => {
            let _ = writeln!(s, "cz {},{};", q(*control)?, q(*target)?);
        }
        CPhase {
            control,
            target,
            lambda,
        } => {
            let _ = writeln!(
                s,
                "cu1({}) {},{};",
                fmt_f(*lambda),
                q(*control)?,
                q(*target)?
            );
        }
        CCX { c0, c1, target } => {
            let _ = writeln!(s, "ccx {},{},{};", q(*c0)?, q(*c1)?, q(*target)?);
        }
        Swap { a, b } => {
            let _ = writeln!(s, "swap {},{};", q(*a)?, q(*b)?);
        }
        CSwap { control, a, b } => {
            let _ = writeln!(s, "cswap {},{},{};", q(*control)?, q(*a)?, q(*b)?);
        }
        Measure { qubit, clbit } => {
            let _ = writeln!(s, "measure {} -> {};", q(*qubit)?, clbit_ref(c, *clbit)?);
        }
        Reset(a) => {
            let _ = writeln!(s, "reset {};", q(*a)?);
        }
        Barrier(qs) => {
            if qs.is_empty() {
                let names: Vec<String> = c
                    .qregs()
                    .iter()
                    .filter(|r| !r.is_empty())
                    .map(|r| sanitize(r.name()))
                    .collect();
                let _ = writeln!(s, "barrier {};", names.join(","));
            } else {
                let refs: QasmResult<Vec<String>> = qs.iter().map(|&a| q(a)).collect();
                let _ = writeln!(s, "barrier {};", refs?.join(","));
            }
        }
        Conditional { clbit, value, gate } => {
            // QASM2 conditions compare a whole creg with an integer; only
            // single-bit registers can express a single-clbit condition.
            let reg = c
                .cregs()
                .iter()
                .find(|r| *clbit >= r.offset() && *clbit < r.offset() + r.len())
                .ok_or(QasmError::UnmappedClbit(*clbit))?;
            if reg.len() != 1 {
                return Err(QasmError::Unsupported(
                    "QASM 2 can only condition on single-bit registers; use QASM 3",
                ));
            }
            let mut inner = String::new();
            emit_qasm2_gate(c, gate, &mut inner)?;
            let _ = write!(
                s,
                "if({}=={}) {}",
                sanitize(reg.name()),
                *value as u8,
                inner
            );
        }
        GlobalPhase(t) => {
            // QASM 2 has no global-phase statement; record it as a comment.
            let _ = writeln!(s, "// global phase {}", fmt_f(*t));
        }
        MCX { .. } | MCPhase { .. } | Unitary { .. } => {
            // Standard-basis transpile removes multi-controlled and
            // raw-matrix gates, but hand-built gate streams can still
            // reach here; emit the ZYZ form directly.
            if let Unitary { target, matrix } = g {
                let (theta, phi, lambda, alpha) = qutes_sim::gates::zyz_decompose(matrix);
                if alpha.abs() > 1e-15 {
                    let _ = writeln!(s, "// global phase {}", fmt_f(alpha));
                }
                let _ = writeln!(
                    s,
                    "u3({},{},{}) {};",
                    fmt_f(theta),
                    fmt_f(phi),
                    fmt_f(lambda),
                    q(*target)?
                );
            } else {
                return Err(QasmError::Unsupported(
                    "multi-controlled gates must be transpiled to the Standard basis first",
                ));
            }
        }
        Unitary2 { .. } | Unitary3 { .. } => {
            // Standard-basis transpile expands fused unitaries, but
            // hand-built gate streams can still reach here; expand inline.
            let lowered = qutes_qcirc::lower_gate_to_standard(g).map_err(QasmError::Circuit)?;
            for l in &lowered {
                emit_qasm2_gate(c, l, s)?;
            }
        }
    }
    Ok(())
}

/// Serialises to OpenQASM 3.0 (`stdgates.inc`). Multi-controlled gates are
/// expressed with `ctrl @` modifiers, conditionals with `if` statements.
pub fn to_qasm3(circuit: &QuantumCircuit) -> QasmResult<String> {
    let mut s = String::new();
    let _ = writeln!(s, "// {}", circuit.name());
    let _ = writeln!(s, "OPENQASM 3.0;");
    let _ = writeln!(s, "include \"stdgates.inc\";");
    for r in circuit.qregs() {
        if !r.is_empty() {
            let _ = writeln!(s, "qubit[{}] {};", r.len(), sanitize(r.name()));
        }
    }
    for r in circuit.cregs() {
        if !r.is_empty() {
            let _ = writeln!(s, "bit[{}] {};", r.len(), sanitize(r.name()));
        }
    }
    for g in circuit.ops() {
        emit_qasm3_gate(circuit, g, &mut s)?;
    }
    Ok(s)
}

fn emit_qasm3_gate(c: &QuantumCircuit, g: &Gate, s: &mut String) -> QasmResult<()> {
    use Gate::*;
    let q = |i: usize| qubit_ref(c, i);
    match g {
        H(_) | X(_) | Y(_) | Z(_) | S(_) | Sdg(_) | T(_) | Tdg(_) | SX(_) => {
            let _ = writeln!(s, "{} {};", g.name(), q(g.qubits()[0])?);
        }
        SXdg(a) => {
            // stdgates has no sxdg; inv-modify sx.
            let _ = writeln!(s, "inv @ sx {};", q(*a)?);
        }
        Phase { target, lambda } => {
            let _ = writeln!(s, "p({}) {};", fmt_f(*lambda), q(*target)?);
        }
        RX { target, theta } => {
            let _ = writeln!(s, "rx({}) {};", fmt_f(*theta), q(*target)?);
        }
        RY { target, theta } => {
            let _ = writeln!(s, "ry({}) {};", fmt_f(*theta), q(*target)?);
        }
        RZ { target, theta } => {
            let _ = writeln!(s, "rz({}) {};", fmt_f(*theta), q(*target)?);
        }
        U {
            target,
            theta,
            phi,
            lambda,
        } => {
            let _ = writeln!(
                s,
                "U({},{},{}) {};",
                fmt_f(*theta),
                fmt_f(*phi),
                fmt_f(*lambda),
                q(*target)?
            );
        }
        CX { control, target } => {
            let _ = writeln!(s, "cx {},{};", q(*control)?, q(*target)?);
        }
        CY { control, target } => {
            let _ = writeln!(s, "cy {},{};", q(*control)?, q(*target)?);
        }
        CZ { control, target } => {
            let _ = writeln!(s, "cz {},{};", q(*control)?, q(*target)?);
        }
        CPhase {
            control,
            target,
            lambda,
        } => {
            let _ = writeln!(
                s,
                "cp({}) {},{};",
                fmt_f(*lambda),
                q(*control)?,
                q(*target)?
            );
        }
        CCX { c0, c1, target } => {
            let _ = writeln!(s, "ccx {},{},{};", q(*c0)?, q(*c1)?, q(*target)?);
        }
        MCX { controls, target } => {
            let refs: QasmResult<Vec<String>> = controls.iter().map(|&a| q(a)).collect();
            let _ = writeln!(
                s,
                "ctrl({}) @ x {},{};",
                controls.len(),
                refs?.join(","),
                q(*target)?
            );
        }
        MCPhase {
            controls,
            target,
            lambda,
        } => {
            let refs: QasmResult<Vec<String>> = controls.iter().map(|&a| q(a)).collect();
            let _ = writeln!(
                s,
                "ctrl({}) @ p({}) {},{};",
                controls.len(),
                fmt_f(*lambda),
                refs?.join(","),
                q(*target)?
            );
        }
        Swap { a, b } => {
            let _ = writeln!(s, "swap {},{};", q(*a)?, q(*b)?);
        }
        CSwap { control, a, b } => {
            let _ = writeln!(s, "cswap {},{},{};", q(*control)?, q(*a)?, q(*b)?);
        }
        Measure { qubit, clbit } => {
            let _ = writeln!(s, "{} = measure {};", clbit_ref(c, *clbit)?, q(*qubit)?);
        }
        Reset(a) => {
            let _ = writeln!(s, "reset {};", q(*a)?);
        }
        Barrier(qs) => {
            if qs.is_empty() {
                let _ = writeln!(s, "barrier;");
            } else {
                let refs: QasmResult<Vec<String>> = qs.iter().map(|&a| q(a)).collect();
                let _ = writeln!(s, "barrier {};", refs?.join(","));
            }
        }
        Conditional { clbit, value, gate } => {
            let mut inner = String::new();
            emit_qasm3_gate(c, gate, &mut inner)?;
            let _ = writeln!(
                s,
                "if ({} == {}) {{ {} }}",
                clbit_ref(c, *clbit)?,
                *value as u8,
                inner.trim_end()
            );
        }
        GlobalPhase(t) => {
            let _ = writeln!(s, "gphase({});", fmt_f(*t));
        }
        Unitary { target, matrix } => {
            let (theta, phi, lambda, alpha) = qutes_sim::gates::zyz_decompose(matrix);
            if alpha.abs() > 1e-15 {
                let _ = writeln!(s, "gphase({});", fmt_f(alpha));
            }
            let _ = writeln!(
                s,
                "U({},{},{}) {};",
                fmt_f(theta),
                fmt_f(phi),
                fmt_f(lambda),
                q(*target)?
            );
        }
        Unitary2 { .. } | Unitary3 { .. } => {
            // No native QASM 3 form for a raw multi-qubit matrix; expand to
            // standard gates (exact, including global phase) and emit those.
            let lowered = qutes_qcirc::lower_gate_to_standard(g).map_err(QasmError::Circuit)?;
            for l in &lowered {
                emit_qasm3_gate(c, l, s)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> QuantumCircuit {
        let mut c = QuantumCircuit::new();
        let q = c.add_qreg("q", 2);
        let m = c.add_creg("c", 2);
        c.h(q.qubit(0)).unwrap();
        c.cx(q.qubit(0), q.qubit(1)).unwrap();
        c.measure_register(&q, &m).unwrap();
        c
    }

    #[test]
    fn qasm2_bell_structure() {
        let s = to_qasm2(&bell()).unwrap();
        assert!(s.contains("OPENQASM 2.0;"));
        assert!(s.contains("include \"qelib1.inc\";"));
        assert!(s.contains("qreg q[2];"));
        assert!(s.contains("creg c[2];"));
        assert!(s.contains("h q[0];"));
        assert!(s.contains("cx q[0],q[1];"));
        assert!(s.contains("measure q[0] -> c[0];"));
    }

    #[test]
    fn qasm3_bell_structure() {
        let s = to_qasm3(&bell()).unwrap();
        assert!(s.contains("OPENQASM 3.0;"));
        assert!(s.contains("qubit[2] q;"));
        assert!(s.contains("bit[2] c;"));
        assert!(s.contains("c[0] = measure q[0];"));
    }

    #[test]
    fn qasm2_decomposes_mcx() {
        let mut c = QuantumCircuit::with_qubits(5);
        c.mcx(&[0, 1, 2, 3], 4).unwrap();
        let s = to_qasm2(&c).unwrap();
        assert!(!s.contains("mcx"));
        assert!(s.contains("ccx") || s.contains("cu1"));
    }

    #[test]
    fn qasm3_keeps_mcx_with_ctrl_modifier() {
        let mut c = QuantumCircuit::with_qubits(5);
        c.mcx(&[0, 1, 2, 3], 4).unwrap();
        let s = to_qasm3(&c).unwrap();
        assert!(s.contains("ctrl(4) @ x"));
    }

    #[test]
    fn multiple_registers_named() {
        let mut c = QuantumCircuit::new();
        let a = c.add_qreg("alpha", 1);
        let b = c.add_qreg("beta", 2);
        c.cx(a.qubit(0), b.qubit(1)).unwrap();
        let s = to_qasm2(&c).unwrap();
        assert!(s.contains("qreg alpha[1];"));
        assert!(s.contains("qreg beta[2];"));
        assert!(s.contains("cx alpha[0],beta[1];"));
    }

    #[test]
    fn conditional_single_bit_register_qasm2() {
        let mut c = QuantumCircuit::new();
        let q = c.add_qreg("q", 2);
        let f = c.add_creg("flag", 1);
        c.measure(q.qubit(0), f.bit(0)).unwrap();
        c.c_if(f.bit(0), true, Gate::X(q.qubit(1))).unwrap();
        let s = to_qasm2(&c).unwrap();
        assert!(s.contains("if(flag==1) x q[1];"));
    }

    #[test]
    fn conditional_wide_register_rejected_qasm2_but_fine_qasm3() {
        let mut c = QuantumCircuit::new();
        let q = c.add_qreg("q", 2);
        let m = c.add_creg("m", 2);
        c.measure(q.qubit(0), m.bit(0)).unwrap();
        c.c_if(m.bit(0), true, Gate::X(q.qubit(1))).unwrap();
        assert!(matches!(to_qasm2(&c), Err(QasmError::Unsupported(_))));
        let s3 = to_qasm3(&c).unwrap();
        assert!(s3.contains("if (m[0] == 1) { x q[1]; }"));
    }

    #[test]
    fn sanitizes_identifiers() {
        let mut c = QuantumCircuit::new();
        let q = c.add_qreg("My Var", 1);
        c.h(q.qubit(0)).unwrap();
        let s = to_qasm2(&c).unwrap();
        assert!(s.contains("qreg vMy_Var[1];"));
    }

    #[test]
    fn unmapped_qubit_error() {
        // Circuit with raw qubits but no registers can't be exported.
        let c = QuantumCircuit::default();
        // (Default has zero qubits; build one with a register then hack: use
        // with_qubits which names the register "q" — so create a gap by
        // using an unregistered index via with_qubits then widening.)
        let _ = c;
        // Simplest: a register-free circuit has no qubits, so test clbit.
        let mut c2 = QuantumCircuit::with_qubits(1);
        // Force an unmapped clbit by constructing Measure by hand.
        assert!(c2.measure(0, 0).is_err()); // validation blocks it earlier
    }

    #[test]
    fn float_formatting_roundtrips() {
        assert_eq!(fmt_f(1.5), "1.5");
        assert_eq!(fmt_f(2.0), "2.0");
        assert_eq!(fmt_f(-0.25), "-0.25");
    }
}
