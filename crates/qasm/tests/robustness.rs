//! Malformed-input robustness corpus for the QASM importer: every
//! pathological input must produce a typed [`QasmError`], never a panic
//! and never a hang.

use qutes_qasm::{from_qasm2, from_qasm2_with_interrupt, QasmError};
use qutes_qcirc::{Interrupt, StopReason};
use std::time::Duration;

#[test]
fn truncated_inputs_are_typed_errors() {
    let corpus = [
        "OPENQASM 2.0",                        // missing semicolon
        "qreg q[2]; h q[0]",                   // unterminated final statement
        "qreg q[",                             // truncated declaration
        "qreg q[2]; if(c==1",                  // truncated conditional
        "qreg q[2]; measure q[0] ->",          // dangling arrow
        "qreg q[2]; cx q[0],",                 // dangling operand
        "qreg q[2]; rz(",                      // truncated parameter list
        "qreg q[2]; u(0.1, 0.2 q[0];",         // missing close paren
        "\u{0}\u{0}\u{0}",                     // NUL bytes
        "qreg q[99999999999999999999999999];", // over-wide integer literal
    ];
    for src in corpus {
        let result = from_qasm2(src);
        assert!(result.is_err(), "accepted malformed input: {src:?}");
    }
}

#[test]
fn pathological_identifiers_are_typed_errors() {
    let long_name = "q".repeat(64 * 1024);
    let corpus = [
        format!("qreg {long_name}[1]; h {long_name}[0];"),
        "qreg \u{202e}evil[1]; h \u{202e}evil[0];".to_string(), // RTL override
        "qreg q[1]; h nosuchreg[0];".to_string(),
        "creg c[1]; qreg q[1]; measure q[0] -> nothere[0];".to_string(),
        "qreg q[1]; h q[1];".to_string(), // index out of range
    ];
    for src in &corpus {
        // Either parses cleanly (the long-but-valid name) or fails with
        // a typed error; what matters is that nothing panics.
        let _ = from_qasm2(src);
    }
    // The unknown-register cases specifically must be errors.
    assert!(from_qasm2("qreg q[1]; h nosuchreg[0];").is_err());
    assert!(from_qasm2("qreg q[1]; h q[1];").is_err());
}

#[test]
fn deeply_repeated_conditionals_do_not_overflow() {
    // QASM has no block nesting, so depth pressure comes from sheer
    // statement volume; a 20k-statement program must import fine (or
    // fail typed), never blow the stack.
    let mut src = String::from("qreg q[1]; creg c[1];\n");
    for _ in 0..20_000 {
        src.push_str("if(c==0) x q[0];\n");
    }
    let circuit = from_qasm2(&src).expect("volume alone is not an error");
    assert_eq!(circuit.num_qubits(), 1);
}

#[test]
fn expired_deadline_interrupts_large_import() {
    let mut src = String::from("qreg q[4]; creg c[4];\n");
    for i in 0..50_000 {
        src.push_str(&format!("h q[{}];\n", i % 4));
    }
    let intr = Interrupt::with_deadline(Duration::ZERO);
    let err = from_qasm2_with_interrupt(&src, &intr).unwrap_err();
    assert!(matches!(
        err,
        QasmError::Interrupted(StopReason::DeadlineExceeded { .. })
    ));
}

#[test]
fn cancelled_import_is_typed() {
    let intr = Interrupt::new();
    intr.cancel();
    let mut src = String::from("qreg q[1];\n");
    for _ in 0..1_000 {
        src.push_str("h q[0];\n");
    }
    let err = from_qasm2_with_interrupt(&src, &intr).unwrap_err();
    assert!(matches!(err, QasmError::Interrupted(StopReason::Cancelled)));
}

#[test]
fn generous_deadline_roundtrips_normally() {
    let intr = Interrupt::with_deadline(Duration::from_secs(600));
    let c = from_qasm2_with_interrupt(
        "qreg q[2]; creg c[2]; h q[0]; cx q[0],q[1]; measure q -> c;",
        &intr,
    )
    .expect("well-formed input under a distant deadline");
    assert_eq!(c.num_qubits(), 2);
    assert_eq!(c.num_clbits(), 2);
}
