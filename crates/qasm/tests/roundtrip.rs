//! Export → import round-trip property: a random circuit serialised to
//! OpenQASM 2 and parsed back must produce the same statevector (up to the
//! global phase QASM 2 cannot express).

use proptest::prelude::*;
use qutes_qasm::{from_qasm2, to_qasm2, to_qasm3};
use qutes_qcirc::{statevector, Gate, QuantumCircuit};

const N: usize = 4;

fn gate_strategy() -> impl Strategy<Value = Gate> {
    prop_oneof![
        (0..N).prop_map(Gate::H),
        (0..N).prop_map(Gate::X),
        (0..N).prop_map(Gate::S),
        (0..N).prop_map(Gate::T),
        (0..N).prop_map(Gate::SX),
        (0..N, -3.0..3.0f64).prop_map(|(t, l)| Gate::Phase {
            target: t,
            lambda: l
        }),
        (0..N, -3.0..3.0f64).prop_map(|(t, th)| Gate::RY {
            target: t,
            theta: th
        }),
        (0..N, -3.0..3.0f64).prop_map(|(t, th)| Gate::RZ {
            target: t,
            theta: th
        }),
        (0..N, 0..N).prop_filter_map("distinct", |(c, t)| (c != t).then_some(Gate::CX {
            control: c,
            target: t
        })),
        (0..N, 0..N, -2.0..2.0f64).prop_filter_map("distinct", |(c, t, l)| (c != t).then_some(
            Gate::CPhase {
                control: c,
                target: t,
                lambda: l
            }
        )),
        (0..N, 0..N).prop_filter_map("distinct", |(a, b)| (a != b).then_some(Gate::Swap { a, b })),
        prop::sample::subsequence(vec![0usize, 1, 2, 3], 3).prop_filter_map("ccx", |qs| (qs.len()
            == 3)
            .then(|| Gate::CCX {
                c0: qs[0],
                c1: qs[1],
                target: qs[2]
            })),
        prop::sample::subsequence(vec![0usize, 1, 2, 3], 4).prop_filter_map("mcx", |qs| {
            (qs.len() == 4).then(|| Gate::MCX {
                controls: qs[..3].to_vec(),
                target: qs[3],
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qasm2_roundtrip_preserves_state(ops in prop::collection::vec(gate_strategy(), 0..20)) {
        let mut c = QuantumCircuit::with_qubits(N);
        for g in &ops {
            c.append(g.clone()).unwrap();
        }
        let text = to_qasm2(&c).unwrap();
        let back = from_qasm2(&text).unwrap();
        prop_assert_eq!(back.num_qubits(), N);
        let sa = statevector(&c).unwrap();
        let sb = statevector(&back).unwrap();
        let f = sa.fidelity(&sb).unwrap();
        prop_assert!((f - 1.0).abs() < 1e-8, "fidelity {f}\nqasm:\n{text}");
    }

    #[test]
    fn qasm3_always_serialises(ops in prop::collection::vec(gate_strategy(), 0..20)) {
        let mut c = QuantumCircuit::with_qubits_and_clbits(N, N);
        for g in &ops {
            c.append(g.clone()).unwrap();
        }
        for q in 0..N {
            c.measure(q, q).unwrap();
        }
        let text = to_qasm3(&c).unwrap();
        prop_assert!(text.starts_with("// "));
        prop_assert!(text.contains("OPENQASM 3.0;"));
        prop_assert!(text.contains("= measure"));
    }
}
