//! Frontend property tests: lexer totality and parse/print round-tripping
//! over randomly generated programs.

use proptest::prelude::*;
use qutes_frontend::{ast::*, lex, parse, print_program, KetState};

proptest! {
    // The lexer must never panic, whatever bytes it is fed.
    #[test]
    fn lexer_is_total(src in "\\PC*") {
        let _ = lex(&src);
    }

    #[test]
    fn lexer_is_total_on_ascii_noise(src in "[ -~]{0,200}") {
        let _ = lex(&src);
    }

    /// Parsing either succeeds or produces diagnostics — never panics.
    #[test]
    fn parser_is_total(src in "[ -~\\n]{0,300}") {
        let _ = parse(&src);
    }
}

// ---- random-AST round-trip ------------------------------------------------

fn ident_strategy() -> impl Strategy<Value = String> {
    // Avoid keywords by prefixing.
    "[a-z]{1,6}".prop_map(|s| format!("v_{s}"))
}

fn leaf_expr() -> impl Strategy<Value = ExprKind> {
    prop_oneof![
        (-1000i64..1000).prop_map(ExprKind::Int),
        (-10.0..10.0f64).prop_map(|f| ExprKind::Float((f * 16.0).round() / 16.0)),
        any::<bool>().prop_map(ExprKind::Bool),
        "[a-zA-Z ]{0,8}".prop_map(ExprKind::Str),
        (0u64..64).prop_map(ExprKind::Quint),
        "[01]{1,6}".prop_map(ExprKind::Qustring),
        prop_oneof![
            Just(KetState::Zero),
            Just(KetState::One),
            Just(KetState::Plus),
            Just(KetState::Minus)
        ]
        .prop_map(ExprKind::Ket),
        Just(ExprKind::Pi),
        ident_strategy().prop_map(ExprKind::Var),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = leaf_expr().prop_map(|k| Expr::new(k, Default::default()));
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Shl),
                    Just(BinOp::Shr),
                    Just(BinOp::In),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::new(
                    ExprKind::Binary(op, Box::new(l), Box::new(r)),
                    Default::default()
                )),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone()).prop_map(|(op, e)| {
                Expr::new(ExprKind::Unary(op, Box::new(e)), Default::default())
            }),
            (ident_strategy(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::new(ExprKind::Call(name, args), Default::default())),
            prop::collection::vec(inner.clone(), 0..3)
                .prop_map(|es| Expr::new(ExprKind::Array(es), Default::default())),
            prop::collection::vec(inner.clone(), 1..3)
                .prop_map(|es| Expr::new(ExprKind::QuantumArray(es), Default::default())),
            (ident_strategy(), inner.clone()).prop_map(|(name, idx)| Expr::new(
                ExprKind::Index(
                    Box::new(Expr::new(ExprKind::Var(name), Default::default())),
                    Box::new(idx)
                ),
                Default::default()
            )),
            inner
                .clone()
                .prop_map(|e| Expr::new(ExprKind::MeasureExpr(Box::new(e)), Default::default())),
        ]
    })
}

fn type_strategy() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Bool),
        Just(Type::Int),
        Just(Type::Float),
        Just(Type::String),
        Just(Type::Qubit),
        Just(Type::Quint),
        Just(Type::Qustring),
        Just(Type::Array(Box::new(Type::Int))),
        Just(Type::Array(Box::new(Type::Qubit))),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        (
            type_strategy(),
            ident_strategy(),
            prop::option::of(expr_strategy())
        )
            .prop_map(|(ty, name, init)| Stmt::VarDecl {
                ty,
                name,
                init,
                span: Default::default()
            }),
        (ident_strategy(), expr_strategy()).prop_map(|(n, v)| Stmt::Assign {
            target: LValue::Name(n),
            op: AssignOp::Set,
            value: v,
            span: Default::default()
        }),
        (ident_strategy(), expr_strategy(), expr_strategy()).prop_map(|(n, i, v)| Stmt::Assign {
            target: LValue::Index(n, i),
            op: AssignOp::Add,
            value: v,
            span: Default::default()
        }),
        expr_strategy().prop_map(|e| Stmt::Print {
            value: e,
            span: Default::default()
        }),
        expr_strategy().prop_map(|e| Stmt::Measure {
            target: e,
            span: Default::default()
        }),
        Just(Stmt::Barrier {
            span: Default::default()
        }),
        (ident_strategy(),).prop_map(|(n,)| Stmt::Gate {
            gate: GateKind::Hadamard,
            args: vec![Expr::new(ExprKind::Var(n), Default::default())],
            span: Default::default()
        }),
        (ident_strategy(), ident_strategy()).prop_map(|(a, b)| Stmt::Gate {
            gate: GateKind::CNot,
            args: vec![
                Expr::new(ExprKind::Var(a), Default::default()),
                Expr::new(ExprKind::Var(b), Default::default())
            ],
            span: Default::default()
        }),
    ];
    simple.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (expr_strategy(), prop::collection::vec(inner.clone(), 0..3)).prop_map(
                |(cond, stmts)| Stmt::If {
                    cond,
                    then_block: Block {
                        stmts,
                        span: Default::default()
                    },
                    else_block: None,
                    span: Default::default()
                }
            ),
            (expr_strategy(), prop::collection::vec(inner.clone(), 0..3)).prop_map(
                |(cond, stmts)| Stmt::While {
                    cond,
                    body: Block {
                        stmts,
                        span: Default::default()
                    },
                    span: Default::default()
                }
            ),
            (
                ident_strategy(),
                expr_strategy(),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(var, it, stmts)| Stmt::Foreach {
                    var,
                    iterable: it,
                    body: Block {
                        stmts,
                        span: Default::default()
                    },
                    span: Default::default()
                }),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(stmt_strategy(), 0..8).prop_map(|stmts| Program {
        items: stmts.into_iter().map(Item::Statement).collect(),
    })
}

/// Strips spans so ASTs can be compared structurally.
fn normalize(p: &Program) -> String {
    // The printer ignores spans entirely, so printed text *is* the
    // span-free normal form.
    print_program(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse → print is a fixpoint for arbitrary ASTs.
    #[test]
    fn printer_parser_roundtrip(program in program_strategy()) {
        let printed = normalize(&program);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed for:\n{printed}\n{e:?}"));
        let printed2 = normalize(&reparsed);
        prop_assert_eq!(printed, printed2);
    }
}
