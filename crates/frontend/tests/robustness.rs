//! Robustness corpus: malformed, truncated, and adversarially nested
//! sources must always come back as `Diagnostic`s — never a panic, never
//! a stack overflow. Each corpus entry is fed to `parse` inside
//! `catch_unwind` so one bad input fails its case instead of aborting the
//! whole suite.

use qutes_frontend::parse;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Parses `src`, asserting the parser neither panics nor loops forever.
/// Returns whether the source was accepted.
fn parse_survives(label: &str, src: &str) -> bool {
    let owned = src.to_string();
    let result = catch_unwind(AssertUnwindSafe(|| parse(&owned).is_ok()));
    match result {
        Ok(accepted) => accepted,
        Err(_) => panic!("parser panicked on corpus entry '{label}'"),
    }
}

/// Like `parse_survives` but additionally requires at least one
/// diagnostic (the input is definitely invalid).
fn expect_rejected(label: &str, src: &str) {
    let owned = src.to_string();
    let result = catch_unwind(AssertUnwindSafe(|| parse(&owned)));
    match result {
        Ok(Ok(_)) => panic!("parser accepted invalid corpus entry '{label}'"),
        Ok(Err(diags)) => assert!(
            !diags.is_empty(),
            "corpus entry '{label}' rejected without diagnostics"
        ),
        Err(_) => panic!("parser panicked on corpus entry '{label}'"),
    }
}

#[test]
fn malformed_corpus_yields_diagnostics_not_panics() {
    let corpus: &[(&str, &str)] = &[
        ("unterminated paren", "print (1 + 2;"),
        ("unterminated block", "if (true) { print 1;"),
        ("stray close brace", "} } }"),
        ("stray close paren", ") ) )"),
        ("stray close bracket", "] ] ]"),
        ("lonely operator", "+"),
        ("operator soup", "* / % + - << >> == != <= >="),
        ("dangling binary", "int x = 1 +;"),
        ("double assign", "int x = = 3;"),
        ("missing semicolon cascade", "int a = 1 int b = 2 int c = 3"),
        ("keyword as name", "int if = 3;"),
        ("gate without args", "h;"),
        ("gate wrong arity", "cx q0;"),
        ("measure nothing", "measure;"),
        ("empty if cond", "if () { print 1; }"),
        ("else without if", "else { print 1; }"),
        ("foreach missing in", "foreach x 1 { print x; }"),
        ("return at top with junk", "return @@@@;"),
        ("truncated function", "int f(int a,"),
        ("truncated mid-token", "int x = 12"),
        ("bare type keyword", "qubit"),
        ("array never closed", "int[] xs = [1, 2, 3"),
        ("call never closed", "f(1, 2, 3"),
        ("index never closed", "xs[0"),
        ("garbage bytes", "\u{0}\u{1}\u{2} int x = 1; \u{7f}"),
        ("only comments", "// nothing here\n// still nothing"),
        ("unicode identifier soup", "int \u{3b1}\u{3b2} = \u{221e};"),
        (
            "huge integer literal",
            "int x = 99999999999999999999999999999999999;",
        ),
        ("semicolon storm", ";;;;;;;;;;;;;;;;;;;;;;;;"),
        ("nested mismatched", "{ ( [ } ) ]"),
    ];
    for (label, src) in corpus {
        // Surviving is the requirement; some entries (comments only,
        // unicode identifiers) may legitimately parse.
        parse_survives(label, src);
    }
}

#[test]
fn definitely_invalid_inputs_are_rejected_with_diagnostics() {
    let invalid: &[(&str, &str)] = &[
        ("unterminated paren", "print (1 + 2;"),
        ("dangling binary", "int x = 1 +;"),
        ("empty if cond", "if () { print 1; }"),
        ("truncated function", "int f(int a,"),
        ("operator soup", "* / % + - << >> == != <= >="),
    ];
    for (label, src) in invalid {
        expect_rejected(label, src);
    }
}

#[test]
fn deep_paren_nesting_is_rejected_not_overflowed() {
    let src = format!("print {}1{};", "(".repeat(100_000), ")".repeat(100_000));
    expect_rejected("100k parens", &src);
}

#[test]
fn unbalanced_deep_parens_do_not_overflow() {
    let src = format!("print {}x;", "(".repeat(100_000));
    expect_rejected("100k open parens", &src);
}

#[test]
fn deep_unary_chains_do_not_overflow() {
    expect_rejected("100k minus", &format!("print {}1;", "-".repeat(100_000)));
    expect_rejected("100k bang", &format!("print {}1;", "!".repeat(100_000)));
}

#[test]
fn deep_block_nesting_is_rejected_not_overflowed() {
    let src = format!("{}print 1;{}", "{".repeat(100_000), "}".repeat(100_000));
    expect_rejected("100k blocks", &src);
}

#[test]
fn deep_else_if_chain_does_not_overflow() {
    let mut src = String::from("if (true) { print 1; }");
    for _ in 0..20_000 {
        src.push_str(" else if (true) { print 1; }");
    }
    expect_rejected("20k else-if", &src);
}

#[test]
fn deep_index_chains_are_rejected_not_overflowed() {
    // Postfix indexing is iterative in the parser but still nests the
    // AST one level per index; unbounded chains would overflow the stack
    // when the tree is dropped or walked.
    let src = format!("print xs{};", "[0]".repeat(50_000));
    expect_rejected("50k index chain", &src);
}

#[test]
fn deep_binary_chains_are_rejected_not_overflowed() {
    // Same story for left-associative operator chains.
    expect_rejected(
        "50k additions",
        &format!("print 1{};", " + 1".repeat(50_000)),
    );
    expect_rejected(
        "50k ors",
        &format!("print true{};", " || true".repeat(50_000)),
    );
}

#[test]
fn shallow_nesting_stays_accepted() {
    // The depth guard must not reject reasonable programs.
    let src = format!("print {}1{};", "(".repeat(64), ")".repeat(64));
    assert!(parse(&src).is_ok(), "64 nested parens must still parse");
    let src = format!("{}print 1;{}", "{".repeat(40), "}".repeat(40));
    assert!(parse(&src).is_ok(), "40 nested blocks must still parse");
}

#[test]
fn truncations_of_a_real_program_never_panic() {
    let program = "\
int f(int a, int b) {
    return a + b * 2;
}
qubit q = 0q;
h q;
if (measure q) {
    print f(1, 2);
} else {
    print 0;
}
";
    for end in 0..program.len() {
        if !program.is_char_boundary(end) {
            continue;
        }
        parse_survives("truncation", &program[..end]);
    }
}
