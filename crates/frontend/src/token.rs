//! Token kinds produced by the Qutes lexer.

use crate::span::Span;
use std::fmt;

/// The four single-qubit ket literals the language understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KetState {
    /// `|0>`
    Zero,
    /// `|1>`
    One,
    /// `|+>` — `(|0> + |1>)/sqrt(2)`
    Plus,
    /// `|->` — `(|0> - |1>)/sqrt(2)`
    Minus,
}

impl fmt::Display for KetState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KetState::Zero => "|0>",
            KetState::One => "|1>",
            KetState::Plus => "|+>",
            KetState::Minus => "|->",
        };
        write!(f, "{s}")
    }
}

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    // Literals
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (contents, unescaped).
    Str(String),
    /// Quantum integer literal `123q`.
    Quint(u64),
    /// Quantum bitstring literal `"0101"q`.
    Qustring(String),
    /// Ket literal.
    Ket(KetState),
    /// Identifier.
    Ident(String),

    // Keywords
    /// `bool`
    KwBool,
    /// `int`
    KwInt,
    /// `float`
    KwFloat,
    /// `string`
    KwString,
    /// `qubit`
    KwQubit,
    /// `quint`
    KwQuint,
    /// `qustring`
    KwQustring,
    /// `void`
    KwVoid,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `foreach`
    KwForeach,
    /// `in`
    KwIn,
    /// `return`
    KwReturn,
    /// `print`
    KwPrint,
    /// `measure`
    KwMeasure,
    /// `barrier`
    KwBarrier,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `pi`
    KwPi,
    /// `not` — logical NOT on classical values, Pauli-X on quantum.
    KwNot,
    /// `hadamard`
    KwHadamard,
    /// `pauliy`
    KwPauliY,
    /// `pauliz`
    KwPauliZ,
    /// `phase`
    KwPhase,
    /// `cnot`
    KwCnot,

    // Punctuation / operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `]q` — closes a quantum array literal.
    RBracketQ,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parser errors.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Int(v) => format!("integer '{v}'"),
            Float(v) => format!("float '{v}'"),
            Str(s) => format!("string \"{s}\""),
            Quint(v) => format!("quint literal '{v}q'"),
            Qustring(s) => format!("qustring literal '\"{s}\"q'"),
            Ket(k) => format!("ket '{k}'"),
            Ident(s) => format!("identifier '{s}'"),
            KwBool => "'bool'".into(),
            KwInt => "'int'".into(),
            KwFloat => "'float'".into(),
            KwString => "'string'".into(),
            KwQubit => "'qubit'".into(),
            KwQuint => "'quint'".into(),
            KwQustring => "'qustring'".into(),
            KwVoid => "'void'".into(),
            KwIf => "'if'".into(),
            KwElse => "'else'".into(),
            KwWhile => "'while'".into(),
            KwForeach => "'foreach'".into(),
            KwIn => "'in'".into(),
            KwReturn => "'return'".into(),
            KwPrint => "'print'".into(),
            KwMeasure => "'measure'".into(),
            KwBarrier => "'barrier'".into(),
            KwTrue => "'true'".into(),
            KwFalse => "'false'".into(),
            KwPi => "'pi'".into(),
            KwNot => "'not'".into(),
            KwHadamard => "'hadamard'".into(),
            KwPauliY => "'pauliy'".into(),
            KwPauliZ => "'pauliz'".into(),
            KwPhase => "'phase'".into(),
            KwCnot => "'cnot'".into(),
            LParen => "'('".into(),
            RParen => "')'".into(),
            LBrace => "'{'".into(),
            RBrace => "'}'".into(),
            LBracket => "'['".into(),
            RBracket => "']'".into(),
            RBracketQ => "']q'".into(),
            Comma => "','".into(),
            Semicolon => "';'".into(),
            Assign => "'='".into(),
            PlusAssign => "'+='".into(),
            MinusAssign => "'-='".into(),
            ShlAssign => "'<<='".into(),
            ShrAssign => "'>>='".into(),
            Eq => "'=='".into(),
            Ne => "'!='".into(),
            Lt => "'<'".into(),
            Le => "'<='".into(),
            Gt => "'>'".into(),
            Ge => "'>='".into(),
            Plus => "'+'".into(),
            Minus => "'-'".into(),
            Star => "'*'".into(),
            Slash => "'/'".into(),
            Percent => "'%'".into(),
            Shl => "'<<'".into(),
            Shr => "'>>'".into(),
            Bang => "'!'".into(),
            AndAnd => "'&&'".into(),
            OrOr => "'||'".into(),
            Eof => "end of input".into(),
        }
    }

    /// Maps an identifier to its keyword token, if it is one.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "bool" => KwBool,
            "int" => KwInt,
            "float" => KwFloat,
            "string" => KwString,
            "qubit" => KwQubit,
            "quint" => KwQuint,
            "qustring" => KwQustring,
            "void" => KwVoid,
            "if" => KwIf,
            "else" => KwElse,
            "while" => KwWhile,
            "foreach" => KwForeach,
            "in" => KwIn,
            "return" => KwReturn,
            "print" => KwPrint,
            "measure" => KwMeasure,
            "barrier" => KwBarrier,
            "true" => KwTrue,
            "false" => KwFalse,
            "pi" => KwPi,
            "not" => KwNot,
            "hadamard" => KwHadamard,
            "pauliy" => KwPauliY,
            "pauliz" => KwPauliZ,
            "phase" => KwPhase,
            "cnot" => KwCnot,
            _ => return None,
        })
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("quint"), Some(TokenKind::KwQuint));
        assert_eq!(TokenKind::keyword("foreach"), Some(TokenKind::KwForeach));
        assert_eq!(TokenKind::keyword("banana"), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Int(5).describe(), "integer '5'");
        assert_eq!(TokenKind::Quint(3).describe(), "quint literal '3q'");
        assert!(TokenKind::Ket(KetState::Plus).describe().contains("|+>"));
    }

    #[test]
    fn ket_display() {
        assert_eq!(KetState::Minus.to_string(), "|->");
        assert_eq!(KetState::Zero.to_string(), "|0>");
    }
}
