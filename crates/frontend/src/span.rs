//! Byte-offset source spans and line/column mapping for diagnostics.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// A zero-width span (used for synthesised nodes).
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Converts byte offsets to 1-based line/column positions.
#[derive(Clone, Debug)]
pub struct LineMap {
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
}

impl LineMap {
    /// Builds the map for `source`.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineMap { line_starts }
    }

    /// `(line, column)` of a byte offset, both 1-based.
    pub fn position(&self, offset: usize) -> (usize, usize) {
        let line = self
            .line_starts
            .partition_point(|&s| s <= offset)
            .saturating_sub(1);
        (line + 1, offset - self.line_starts[line] + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(8, 10);
        assert_eq!(a.merge(b), Span::new(2, 10));
        assert_eq!(b.merge(a), Span::new(2, 10));
    }

    #[test]
    fn line_map_positions() {
        let src = "ab\ncd\n\nxyz";
        let m = LineMap::new(src);
        assert_eq!(m.position(0), (1, 1));
        assert_eq!(m.position(1), (1, 2));
        assert_eq!(m.position(3), (2, 1));
        assert_eq!(m.position(4), (2, 2));
        assert_eq!(m.position(6), (3, 1));
        assert_eq!(m.position(7), (4, 1));
        assert_eq!(m.position(9), (4, 3));
    }

    #[test]
    fn display_format() {
        assert_eq!(Span::new(1, 4).to_string(), "1..4");
    }
}
