//! The Qutes lexer (hand-written; replaces the ANTLR-generated lexer of
//! the reference implementation).
//!
//! Quantum literal forms handled here:
//! * `5q` — quantum integer ([`TokenKind::Quint`]),
//! * `"0101"q` — quantum bitstring ([`TokenKind::Qustring`]),
//! * `|0> |1> |+> |->` — ket literals,
//! * `]q` — closes a quantum array literal `[a, b, ...]q`.

use crate::diag::Diagnostic;
use crate::span::Span;
use crate::token::{KetState, Token, TokenKind};

/// Lexes a full source file. Returns all tokens (ending with `Eof`) or the
/// first lexical error.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.src.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(Diagnostic::error(
                                    "unterminated block comment",
                                    Span::new(open, self.pos),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::point(self.pos),
                });
                return Ok(out);
            };
            let kind = match b {
                b'0'..=b'9' => self.number(start)?,
                b'"' => self.string(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'|' => {
                    // Ket literal `|x>` or logical-or `||`.
                    if let Some(k) = self.try_ket() {
                        k
                    } else if self.peek2() == Some(b'|') {
                        self.pos += 2;
                        TokenKind::OrOr
                    } else {
                        return Err(Diagnostic::error(
                            "expected ket literal (|0>, |1>, |+>, |->) or '||'",
                            Span::new(start, start + 1),
                        ));
                    }
                }
                b'&' if self.peek2() == Some(b'&') => {
                    self.pos += 2;
                    TokenKind::AndAnd
                }
                b'(' => {
                    self.pos += 1;
                    TokenKind::LParen
                }
                b')' => {
                    self.pos += 1;
                    TokenKind::RParen
                }
                b'{' => {
                    self.pos += 1;
                    TokenKind::LBrace
                }
                b'}' => {
                    self.pos += 1;
                    TokenKind::RBrace
                }
                b'[' => {
                    self.pos += 1;
                    TokenKind::LBracket
                }
                b']' => {
                    // `]q` closes a quantum array literal when the `q` is
                    // not the start of a longer identifier.
                    if self.peek2() == Some(b'q')
                        && !self
                            .peek3()
                            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                    {
                        self.pos += 2;
                        TokenKind::RBracketQ
                    } else {
                        self.pos += 1;
                        TokenKind::RBracket
                    }
                }
                b',' => {
                    self.pos += 1;
                    TokenKind::Comma
                }
                b';' => {
                    self.pos += 1;
                    TokenKind::Semicolon
                }
                b'=' => {
                    if self.peek2() == Some(b'=') {
                        self.pos += 2;
                        TokenKind::Eq
                    } else {
                        self.pos += 1;
                        TokenKind::Assign
                    }
                }
                b'!' => {
                    if self.peek2() == Some(b'=') {
                        self.pos += 2;
                        TokenKind::Ne
                    } else {
                        self.pos += 1;
                        TokenKind::Bang
                    }
                }
                b'<' => match (self.peek2(), self.peek3()) {
                    (Some(b'<'), Some(b'=')) => {
                        self.pos += 3;
                        TokenKind::ShlAssign
                    }
                    (Some(b'<'), _) => {
                        self.pos += 2;
                        TokenKind::Shl
                    }
                    (Some(b'='), _) => {
                        self.pos += 2;
                        TokenKind::Le
                    }
                    _ => {
                        self.pos += 1;
                        TokenKind::Lt
                    }
                },
                b'>' => match (self.peek2(), self.peek3()) {
                    (Some(b'>'), Some(b'=')) => {
                        self.pos += 3;
                        TokenKind::ShrAssign
                    }
                    (Some(b'>'), _) => {
                        self.pos += 2;
                        TokenKind::Shr
                    }
                    (Some(b'='), _) => {
                        self.pos += 2;
                        TokenKind::Ge
                    }
                    _ => {
                        self.pos += 1;
                        TokenKind::Gt
                    }
                },
                b'+' => {
                    if self.peek2() == Some(b'=') {
                        self.pos += 2;
                        TokenKind::PlusAssign
                    } else {
                        self.pos += 1;
                        TokenKind::Plus
                    }
                }
                b'-' => {
                    if self.peek2() == Some(b'=') {
                        self.pos += 2;
                        TokenKind::MinusAssign
                    } else {
                        self.pos += 1;
                        TokenKind::Minus
                    }
                }
                b'*' => {
                    self.pos += 1;
                    TokenKind::Star
                }
                b'/' => {
                    self.pos += 1;
                    TokenKind::Slash
                }
                b'%' => {
                    self.pos += 1;
                    TokenKind::Percent
                }
                other => {
                    return Err(Diagnostic::error(
                        format!("unexpected character '{}'", other as char),
                        Span::new(start, start + 1),
                    ))
                }
            };
            out.push(Token {
                kind,
                span: Span::new(start, self.pos),
            });
        }
    }

    /// Attempts to lex `|0>`, `|1>`, `|+>`, `|->`. Leaves `pos` untouched
    /// on failure.
    fn try_ket(&mut self) -> Option<TokenKind> {
        let state = match self.peek2()? {
            b'0' => KetState::Zero,
            b'1' => KetState::One,
            b'+' => KetState::Plus,
            b'-' => KetState::Minus,
            _ => return None,
        };
        if self.peek3() == Some(b'>') {
            self.pos += 3;
            Some(TokenKind::Ket(state))
        } else {
            None
        }
    }

    fn number(&mut self, start: usize) -> Result<TokenKind, Diagnostic> {
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        // Float: digits '.' digits
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            let v: f64 = text.parse().map_err(|_| {
                Diagnostic::error(
                    format!("invalid float literal '{text}'"),
                    Span::new(start, self.pos),
                )
            })?;
            return Ok(TokenKind::Float(v));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        // Quantum integer: digits immediately followed by a lone 'q'.
        if self.peek() == Some(b'q')
            && !self
                .peek2()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
            let v: u64 = text.parse().map_err(|_| {
                Diagnostic::error(
                    format!("quint literal '{text}q' out of range"),
                    Span::new(start, self.pos),
                )
            })?;
            return Ok(TokenKind::Quint(v));
        }
        if self
            .peek()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
        {
            return Err(Diagnostic::error(
                format!("invalid suffix on number literal '{text}'"),
                Span::new(start, self.pos + 1),
            ));
        }
        let v: i64 = text.parse().map_err(|_| {
            Diagnostic::error(
                format!("integer literal '{text}' out of range"),
                Span::new(start, self.pos),
            )
        })?;
        Ok(TokenKind::Int(v))
    }

    fn string(&mut self, start: usize) -> Result<TokenKind, Diagnostic> {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => value.push('\n'),
                    Some(b't') => value.push('\t'),
                    Some(b'\\') => value.push('\\'),
                    Some(b'"') => value.push('"'),
                    Some(other) => {
                        return Err(Diagnostic::error(
                            format!("unknown escape '\\{}'", other as char),
                            Span::new(self.pos - 2, self.pos),
                        ))
                    }
                    None => {
                        return Err(Diagnostic::error(
                            "unterminated string literal",
                            Span::new(start, self.pos),
                        ))
                    }
                },
                Some(b'\n') | None => {
                    return Err(Diagnostic::error(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ))
                }
                Some(other) => value.push(other as char),
            }
        }
        // Quantum bitstring: closing quote immediately followed by lone 'q'.
        if self.peek() == Some(b'q')
            && !self
                .peek2()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
            if !value.chars().all(|c| c == '0' || c == '1') {
                return Err(Diagnostic::error(
                    "qustring literals are restricted to bitstrings of 0s and 1s \
                     (current hardware constraint, paper §4)",
                    Span::new(start, self.pos),
                ));
            }
            return Ok(TokenKind::Qustring(value));
        }
        Ok(TokenKind::Str(value))
    }

    fn ident(&mut self, start: usize) -> TokenKind {
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        let word = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| *k != Eof)
            .collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![KwInt, Ident("x".into()), Assign, Int(42), Semicolon]
        );
    }

    #[test]
    fn lexes_quantum_literals() {
        assert_eq!(kinds("5q"), vec![Quint(5)]);
        assert_eq!(kinds("0q 1q"), vec![Quint(0), Quint(1)]);
        assert_eq!(kinds("\"0101\"q"), vec![Qustring("0101".into())]);
        assert_eq!(
            kinds("|0> |1> |+> |->"),
            vec![
                Ket(KetState::Zero),
                Ket(KetState::One),
                Ket(KetState::Plus),
                Ket(KetState::Minus)
            ]
        );
    }

    #[test]
    fn quantum_array_literal_close() {
        assert_eq!(
            kinds("[1, 2]q"),
            vec![LBracket, Int(1), Comma, Int(2), RBracketQ]
        );
        // `]qx` is a plain bracket followed by identifier `qx`.
        assert_eq!(
            kinds("[1]qx"),
            vec![LBracket, Int(1), RBracket, Ident("qx".into())]
        );
    }

    #[test]
    fn q_suffix_requires_word_boundary() {
        // `5quack` is an error (invalid suffix), not Quint(5) + "uack".
        assert!(lex("5quack").is_err());
        // `q5` is just an identifier.
        assert_eq!(kinds("q5"), vec![Ident("q5".into())]);
    }

    #[test]
    fn floats_and_ints() {
        assert_eq!(kinds("1.5 2 0.25"), vec![Float(1.5), Int(2), Float(0.25)]);
    }

    #[test]
    fn dot_alone_is_error() {
        assert!(lex(".").is_err());
        assert!(lex("1 .").is_err());
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("<<= >>= << >> <= >= < > == != = ! && ||"),
            vec![
                ShlAssign, ShrAssign, Shl, Shr, Le, Ge, Lt, Gt, Eq, Ne, Assign, Bang, AndAnd, OrOr
            ]
        );
        assert_eq!(
            kinds("+= -= + -"),
            vec![PlusAssign, MinusAssign, Plus, Minus]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("int x; // comment\n/* block\ncomment */ int y;"),
            vec![
                KwInt,
                Ident("x".into()),
                Semicolon,
                KwInt,
                Ident("y".into()),
                Semicolon
            ]
        );
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds(r#""a\nb\"c""#), vec![Str("a\nb\"c".into())]);
        assert!(lex("\"unterminated").is_err());
        assert!(lex(r#""bad \x escape""#).is_err());
    }

    #[test]
    fn qustring_must_be_bits() {
        assert!(lex("\"01a\"q").is_err());
        assert_eq!(kinds("\"0011\"q"), vec![Qustring("0011".into())]);
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("quint quintx hadamard hadamards"),
            vec![
                KwQuint,
                Ident("quintx".into()),
                KwHadamard,
                Ident("hadamards".into())
            ]
        );
    }

    #[test]
    fn lone_pipe_is_error_but_oror_ok() {
        assert!(lex("a | b").is_err());
        assert_eq!(kinds("a || b").len(), 3);
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("int  xy = 3;").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(5, 7));
        assert_eq!(toks[3].span, Span::new(10, 11));
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = lex("int x = @;").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.span.start, 8);
    }

    #[test]
    fn ket_in_expression_context() {
        // `a|0>` would be ket after ident — ensure the ket lexes.
        assert_eq!(
            kinds("qubit k = |+>;"),
            vec![
                KwQubit,
                Ident("k".into()),
                Assign,
                Ket(KetState::Plus),
                Semicolon
            ]
        );
    }
}
