//! # qutes-frontend
//!
//! Lexer, parser, and AST for the Qutes quantum programming language
//! (Faro, Marino & Messina, HPDC 2025). The reference implementation
//! generates its frontend with ANTLR 4; this crate is a hand-written
//! equivalent with spans, multi-error recovery, and a canonical
//! pretty-printer.
//!
//! ```
//! use qutes_frontend::parse;
//!
//! let program = parse(r#"
//!     quint n = 5q;
//!     hadamard n;
//!     print n;
//! "#).unwrap();
//! assert_eq!(program.items.len(), 3);
//! ```

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;

pub use ast::{
    AssignOp, BinOp, Block, Expr, ExprKind, FunctionDecl, GateKind, Item, LValue, Param, Program,
    Stmt, Type, UnOp,
};
pub use diag::{Diagnostic, Severity};
pub use lexer::lex;
pub use parser::{parse, parse_expression, parse_with_interrupt, ParseFailure};
pub use printer::{print_expr, print_program};
pub use span::{LineMap, Span};
pub use token::{KetState, Token, TokenKind};
