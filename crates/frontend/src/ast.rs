//! Abstract syntax tree for the Qutes language.
//!
//! The shape mirrors the reference implementation's grammar: a program is
//! a list of function declarations and top-level statements; types span
//! the classical (`bool int float string`) and quantum (`qubit quint
//! qustring`) domains plus arrays of either (paper §4).

use crate::span::Span;
use crate::token::KetState;
use std::fmt;

/// A Qutes type annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Type {
    /// Classical boolean.
    Bool,
    /// Classical integer.
    Int,
    /// Classical float.
    Float,
    /// Classical string.
    String,
    /// Single quantum bit.
    Qubit,
    /// Quantum integer register.
    Quint,
    /// Quantum bitstring.
    Qustring,
    /// Function return type for procedures.
    Void,
    /// Array of any element type.
    Array(Box<Type>),
}

impl Type {
    /// True for `qubit`, `quint`, `qustring`, and arrays of them.
    pub fn is_quantum(&self) -> bool {
        match self {
            Type::Qubit | Type::Quint | Type::Qustring => true,
            Type::Array(t) => t.is_quantum(),
            _ => false,
        }
    }

    /// True for classical scalar/array types.
    pub fn is_classical(&self) -> bool {
        !self.is_quantum() && *self != Type::Void
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::String => write!(f, "string"),
            Type::Qubit => write!(f, "qubit"),
            Type::Quint => write!(f, "quint"),
            Type::Qustring => write!(f, "qustring"),
            Type::Void => write!(f, "void"),
            Type::Array(t) => write!(f, "{t}[]"),
        }
    }
}

/// A whole source file.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Function declarations and top-level statements, in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// A function declaration.
    Function(FunctionDecl),
    /// A script-style top-level statement.
    Statement(Stmt),
}

/// `ret_type name(params) { body }`.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionDecl {
    /// Function name.
    pub name: String,
    /// Declared return type.
    pub ret_type: Type,
    /// Parameter list.
    pub params: Vec<Param>,
    /// Body block.
    pub body: Block,
    /// Whole-declaration span.
    pub span: Span,
}

/// One function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Span of the parameter.
    pub span: Span,
}

/// `{ statements }`.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span including braces.
    pub span: Span,
}

/// Compound-assignment operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=` — in-place quantum addition when the target is quantum.
    Add,
    /// `-=`
    Sub,
    /// `<<=` — in-place cyclic left shift on quantum registers.
    Shl,
    /// `>>=` — in-place cyclic right shift.
    Shr,
}

impl fmt::Display for AssignOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssignOp::Set => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Shl => "<<=",
            AssignOp::Shr => ">>=",
        };
        write!(f, "{s}")
    }
}

/// Assignment target: a variable or one array element.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Plain variable.
    Name(String),
    /// `name[index]`.
    Index(String, Expr),
}

/// Built-in quantum gate statements (paper §4: "Hadamard and Pauli gates,
/// alongside phase gates").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateKind {
    /// `hadamard x;`
    Hadamard,
    /// `not x;` — Pauli-X on quantum operands.
    NotGate,
    /// `pauliy x;`
    PauliY,
    /// `pauliz x;`
    PauliZ,
    /// `phase(x, theta);`
    Phase,
    /// `cnot a, b;`
    CNot,
}

impl GateKind {
    /// Language-level mnemonic.
    pub fn name(&self) -> &'static str {
        match self {
            GateKind::Hadamard => "hadamard",
            GateKind::NotGate => "not",
            GateKind::PauliY => "pauliy",
            GateKind::PauliZ => "pauliz",
            GateKind::Phase => "phase",
            GateKind::CNot => "cnot",
        }
    }
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `type name = init;`
    VarDecl {
        /// Declared type.
        ty: Type,
        /// Variable name.
        name: String,
        /// Optional initialiser.
        init: Option<Expr>,
        /// Statement span.
        span: Span,
    },
    /// `target op value;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Operator (`=`, `+=`, …).
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// `if (cond) {..} else {..}`
    If {
        /// Condition (auto-measured when quantum).
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
        /// Statement span.
        span: Span,
    },
    /// `while (cond) {..}`
    While {
        /// Condition (auto-measured when quantum).
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Statement span.
        span: Span,
    },
    /// `foreach x in arr {..}`
    Foreach {
        /// Loop variable.
        var: String,
        /// Array expression iterated over.
        iterable: Expr,
        /// Loop body.
        body: Block,
        /// Statement span.
        span: Span,
    },
    /// `return expr?;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Statement span.
        span: Span,
    },
    /// `print expr;`
    Print {
        /// Printed value (auto-measured when quantum).
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// A bare expression (function call) statement.
    Expr {
        /// The expression.
        expr: Expr,
        /// Statement span.
        span: Span,
    },
    /// A built-in gate application.
    Gate {
        /// Which gate.
        gate: GateKind,
        /// Gate operands (and the angle for `phase`).
        args: Vec<Expr>,
        /// Statement span.
        span: Span,
    },
    /// `measure expr;` — explicit measurement.
    Measure {
        /// The measured quantum expression.
        target: Expr,
        /// Statement span.
        span: Span,
    },
    /// `barrier;`
    Barrier {
        /// Statement span.
        span: Span,
    },
    /// A nested block (scoping).
    Block(Block),
}

impl Stmt {
    /// Span of any statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::VarDecl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Foreach { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Print { span, .. }
            | Stmt::Expr { span, .. }
            | Stmt::Gate { span, .. }
            | Stmt::Measure { span, .. }
            | Stmt::Barrier { span } => *span,
            Stmt::Block(b) => b.span,
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+` — classical addition, or quantum superposition addition.
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==` (auto-measures quantum operands)
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `<<` — cyclic left shift on quantum registers.
    Shl,
    /// `>>` — cyclic right shift.
    Shr,
    /// `in` — Grover substring search on qustrings.
    In,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::In => "in",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
}

/// An expression with its span.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// The expression's structure.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// The expression grammar.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Quantum integer literal `5q`.
    Quint(u64),
    /// Quantum bitstring literal `"0101"q`.
    Qustring(String),
    /// Ket literal.
    Ket(KetState),
    /// The constant `pi`.
    Pi,
    /// Classical array literal `[a, b, c]`.
    Array(Vec<Expr>),
    /// Quantum array literal `[a, b, c]q` — a register in equal
    /// superposition of the listed basis values, or an amplitude pair for
    /// a single qubit.
    QuantumArray(Vec<Expr>),
    /// Variable reference.
    Var(String),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// `measure expr` used as an expression (explicit cast to classical).
    MeasureExpr(Box<Expr>),
}

impl Expr {
    /// Convenience constructor.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_quantumness() {
        assert!(Type::Qubit.is_quantum());
        assert!(Type::Array(Box::new(Type::Quint)).is_quantum());
        assert!(!Type::Int.is_quantum());
        assert!(Type::Int.is_classical());
        assert!(!Type::Void.is_classical());
        assert!(Type::Array(Box::new(Type::Bool)).is_classical());
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Quint.to_string(), "quint");
        assert_eq!(Type::Array(Box::new(Type::Int)).to_string(), "int[]");
        assert_eq!(
            Type::Array(Box::new(Type::Array(Box::new(Type::Qubit)))).to_string(),
            "qubit[][]"
        );
    }

    #[test]
    fn stmt_span_accessor() {
        let s = Stmt::Barrier {
            span: Span::new(3, 10),
        };
        assert_eq!(s.span(), Span::new(3, 10));
    }

    #[test]
    fn operators_display() {
        assert_eq!(BinOp::In.to_string(), "in");
        assert_eq!(BinOp::Shl.to_string(), "<<");
        assert_eq!(AssignOp::Shr.to_string(), ">>=");
        assert_eq!(GateKind::PauliY.name(), "pauliy");
    }
}
