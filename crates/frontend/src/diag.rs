//! Diagnostics: positioned error messages with source context.
//!
//! One `Diagnostic` type serves the whole stack: the lexer/parser and the
//! type checker emit [`Severity::Error`]s, while the static analyzer
//! (`qutes-analysis`) emits [`Severity::Warning`] and [`Severity::Note`]
//! findings tagged with a lint code (`QL001`, …). [`Diagnostic::render`]
//! is the shared renderer, so lint output matches error formatting.

use crate::span::{LineMap, Span};
use std::fmt;

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// An informational remark; never fails a build.
    Note,
    /// A suspicious construct that still compiles.
    Warning,
    /// A fatal problem; compilation cannot proceed to execution.
    Error,
}

impl Severity {
    /// The lowercase label used in rendered output.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// A single positioned message.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Error, warning, or note.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source span the message refers to.
    pub span: Span,
    /// Optional machine-readable code (`QL001`, …) set by lints.
    pub code: Option<&'static str>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            code: None,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            code: None,
        }
    }

    /// Creates a note diagnostic.
    pub fn note(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Note,
            message: message.into(),
            span,
            code: None,
        }
    }

    /// Attaches a machine-readable code, rendered as `warning[QL001]: …`.
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = Some(code);
        self
    }

    /// The `severity` or `severity[code]` prefix of rendered output.
    fn heading(&self) -> String {
        match self.code {
            Some(code) => format!("{}[{code}]", self.severity.label()),
            None => self.severity.label().to_string(),
        }
    }

    /// Renders with `line:col` coordinates and a source snippet marker.
    pub fn render(&self, source: &str) -> String {
        let map = LineMap::new(source);
        let (line, col) = map.position(self.span.start);
        let src_line = source.lines().nth(line - 1).unwrap_or("");
        let mut out = format!("{}: {} at {line}:{col}\n", self.heading(), self.message);
        out.push_str(&format!("  | {src_line}\n"));
        let width = self
            .span
            .end
            .saturating_sub(self.span.start)
            .clamp(1, src_line.len().saturating_sub(col - 1).max(1));
        out.push_str(&format!(
            "  | {}{}\n",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ({})", self.heading(), self.message, self.span)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_span() {
        let src = "int x = @;\n";
        let d = Diagnostic::error("unexpected character '@'", Span::new(8, 9));
        let r = d.render(src);
        assert!(r.contains("error: unexpected character '@' at 1:9"));
        assert!(r.contains("int x = @;"));
        assert!(r.lines().nth(2).unwrap().contains("        ^"));
    }

    #[test]
    fn display_compact() {
        let d = Diagnostic::warning("shadowed variable", Span::new(0, 3));
        assert_eq!(d.to_string(), "warning: shadowed variable (0..3)");
    }

    #[test]
    fn coded_diagnostics_render_the_code() {
        let src = "qubit q = |0>;\n";
        let d = Diagnostic::warning("unused variable 'q'", Span::new(6, 7)).with_code("QL101");
        assert!(d.render(src).starts_with("warning[QL101]: unused variable"));
        assert_eq!(d.to_string(), "warning[QL101]: unused variable 'q' (6..7)");
        let n = Diagnostic::note("implicit measurement", Span::new(0, 5)).with_code("QL201");
        assert!(n.render(src).starts_with("note[QL201]: "));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
