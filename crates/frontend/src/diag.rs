//! Diagnostics: positioned error messages with source context.

use crate::span::{LineMap, Span};
use std::fmt;

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A fatal problem; compilation cannot proceed to execution.
    Error,
    /// A suspicious construct that still compiles.
    Warning,
}

/// A single positioned message.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source span the message refers to.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Renders with `line:col` coordinates and a source snippet marker.
    pub fn render(&self, source: &str) -> String {
        let map = LineMap::new(source);
        let (line, col) = map.position(self.span.start);
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let src_line = source.lines().nth(line - 1).unwrap_or("");
        let mut out = format!("{sev}: {} at {line}:{col}\n", self.message);
        out.push_str(&format!("  | {src_line}\n"));
        let width = self
            .span
            .end
            .saturating_sub(self.span.start)
            .clamp(1, src_line.len().saturating_sub(col - 1).max(1));
        out.push_str(&format!(
            "  | {}{}\n",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}: {} ({})", self.message, self.span)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_span() {
        let src = "int x = @;\n";
        let d = Diagnostic::error("unexpected character '@'", Span::new(8, 9));
        let r = d.render(src);
        assert!(r.contains("error: unexpected character '@' at 1:9"));
        assert!(r.contains("int x = @;"));
        assert!(r.lines().nth(2).unwrap().contains("        ^"));
    }

    #[test]
    fn display_compact() {
        let d = Diagnostic::warning("shadowed variable", Span::new(0, 3));
        assert_eq!(d.to_string(), "warning: shadowed variable (0..3)");
    }
}
