//! Recursive-descent parser for Qutes (replaces the ANTLR parse rules of
//! the reference implementation).
//!
//! The parser recovers at statement boundaries so a file with several
//! mistakes reports them all in one pass.

use crate::ast::*;
use crate::diag::Diagnostic;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use qutes_supervisor::{failpoint, Interrupt, StopReason};

/// Why [`parse_with_interrupt`] failed: ordinary syntax diagnostics, or
/// a deadline/cancellation trip observed at a statement boundary.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseFailure {
    /// The source has syntax errors.
    Diagnostics(Vec<Diagnostic>),
    /// The parse was cut short by the supervisor.
    Interrupted(StopReason),
}

/// Parses a full source file into a [`Program`], or every diagnostic found.
pub fn parse(source: &str) -> Result<Program, Vec<Diagnostic>> {
    parse_with_interrupt(source, &Interrupt::new()).map_err(|f| match f {
        ParseFailure::Diagnostics(diags) => diags,
        // Unreachable: an unarmed handle never trips.
        ParseFailure::Interrupted(reason) => vec![Diagnostic::error(
            format!("parse interrupted: {reason}"),
            Span::default(),
        )],
    })
}

/// [`parse`] with cooperative cancellation: the handle is checked at
/// statement boundaries, so even a pathologically long source cannot
/// outlive its wall-clock budget.
pub fn parse_with_interrupt(source: &str, intr: &Interrupt) -> Result<Program, ParseFailure> {
    let _ = failpoint("frontend.parse");
    let tokens = {
        let _span = qutes_obs::span("stage.lex");
        lex(source).map_err(|d| ParseFailure::Diagnostics(vec![d]))?
    };
    let _span = qutes_obs::span("stage.parse");
    let mut p = Parser {
        tokens,
        pos: 0,
        diags: Vec::new(),
        depth: 0,
        interrupt: intr.clone(),
        interrupt_ck: 0,
        stopped: None,
    };
    let program = p.program();
    if let Some(reason) = p.stopped {
        return Err(ParseFailure::Interrupted(reason));
    }
    if p.diags.is_empty() {
        Ok(program)
    } else {
        Err(ParseFailure::Diagnostics(p.diags))
    }
}

/// Parses a single expression (used by the REPL and tests).
pub fn parse_expression(source: &str) -> Result<Expr, Vec<Diagnostic>> {
    let tokens = lex(source).map_err(|d| vec![d])?;
    let mut p = Parser {
        tokens,
        pos: 0,
        diags: Vec::new(),
        depth: 0,
        interrupt: Interrupt::new(),
        interrupt_ck: 0,
        stopped: None,
    };
    let e = p.expr();
    p.expect(TokenKind::Eof);
    match (e, p.diags.is_empty()) {
        (Some(e), true) => Ok(e),
        (_, _) => Err(p.diags),
    }
}

/// Maximum nesting depth of statements/expressions before the parser
/// gives up with a diagnostic instead of risking a stack overflow on
/// adversarial input like `((((((...` or `{{{{{{...`.
const MAX_NESTING_DEPTH: usize = 200;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Vec<Diagnostic>,
    depth: usize,
    interrupt: Interrupt,
    interrupt_ck: u64,
    stopped: Option<StopReason>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> bool {
        if self.eat(kind.clone()) {
            true
        } else {
            self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            ));
            false
        }
    }

    fn error(&mut self, message: impl Into<String>) {
        let span = self.span();
        self.diags.push(Diagnostic::error(message, span));
    }

    /// Bumps the recursion depth; reports a diagnostic and refuses when
    /// the input nests deeper than [`MAX_NESTING_DEPTH`]. Every `true`
    /// return must be paired with a [`Parser::leave`].
    fn enter(&mut self) -> bool {
        if self.depth >= MAX_NESTING_DEPTH {
            self.depth_error();
            return false;
        }
        self.depth += 1;
        true
    }

    /// Only reported once per parse; deeper frames unwind silently.
    fn depth_error(&mut self) {
        if !self
            .diags
            .iter()
            .any(|d| d.message.contains("nested too deeply"))
        {
            self.error("program is nested too deeply");
        }
    }

    fn leave(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Skips tokens until a likely statement boundary.
    fn synchronize(&mut self) {
        loop {
            match self.peek() {
                TokenKind::Semicolon => {
                    self.bump();
                    return;
                }
                TokenKind::RBrace | TokenKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- grammar ---------------------------------------------------------

    fn program(&mut self) -> Program {
        let mut items = Vec::new();
        while *self.peek() != TokenKind::Eof {
            if let Err(reason) = self.interrupt.checkpoint_named(
                &mut self.interrupt_ck,
                16,
                "stage.parse.checkpoints",
            ) {
                self.stopped = Some(reason);
                break;
            }
            let before = self.pos;
            if let Some(item) = self.item() {
                items.push(item);
            } else {
                self.synchronize();
            }
            if self.pos == before {
                // Defensive: guarantee progress even on weird input.
                self.bump();
            }
        }
        Program { items }
    }

    fn item(&mut self) -> Option<Item> {
        if self.at_type_keyword() {
            // `type name (` → function; `type name …` → declaration.
            let save = self.pos;
            let ty = self.parse_type()?;
            if let TokenKind::Ident(name) = self.peek().clone() {
                if *self.peek2() == TokenKind::LParen {
                    self.bump(); // name
                    return self.function_decl(ty, name).map(Item::Function);
                }
            }
            self.pos = save;
            return self.statement().map(Item::Statement);
        }
        if *self.peek() == TokenKind::KwVoid {
            let ty = self.parse_type()?;
            let name = self.ident("function name")?;
            return self.function_decl(ty, name).map(Item::Function);
        }
        self.statement().map(Item::Statement)
    }

    fn at_type_keyword(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwBool
                | TokenKind::KwInt
                | TokenKind::KwFloat
                | TokenKind::KwString
                | TokenKind::KwQubit
                | TokenKind::KwQuint
                | TokenKind::KwQustring
        )
    }

    fn parse_type(&mut self) -> Option<Type> {
        let base = match self.peek() {
            TokenKind::KwBool => Type::Bool,
            TokenKind::KwInt => Type::Int,
            TokenKind::KwFloat => Type::Float,
            TokenKind::KwString => Type::String,
            TokenKind::KwQubit => Type::Qubit,
            TokenKind::KwQuint => Type::Quint,
            TokenKind::KwQustring => Type::Qustring,
            TokenKind::KwVoid => Type::Void,
            other => {
                let msg = format!("expected a type, found {}", other.describe());
                self.error(msg);
                return None;
            }
        };
        self.bump();
        let mut ty = base;
        while *self.peek() == TokenKind::LBracket && *self.peek2() == TokenKind::RBracket {
            self.bump();
            self.bump();
            ty = Type::Array(Box::new(ty));
        }
        Some(ty)
    }

    fn ident(&mut self, what: &str) -> Option<String> {
        if let TokenKind::Ident(name) = self.peek().clone() {
            self.bump();
            Some(name)
        } else {
            let msg = format!("expected {what}, found {}", self.peek().describe());
            self.error(msg);
            None
        }
    }

    fn function_decl(&mut self, ret_type: Type, name: String) -> Option<FunctionDecl> {
        let start = self.prev_span();
        self.expect(TokenKind::LParen);
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let pspan = self.span();
                let ty = self.parse_type()?;
                let pname = self.ident("parameter name")?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pspan.merge(self.prev_span()),
                });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen);
        let body = self.block()?;
        let span = start.merge(body.span);
        Some(FunctionDecl {
            name,
            ret_type,
            params,
            body,
            span,
        })
    }

    fn block(&mut self) -> Option<Block> {
        let start = self.span();
        if !self.expect(TokenKind::LBrace) {
            return None;
        }
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace && *self.peek() != TokenKind::Eof {
            let before = self.pos;
            if let Some(s) = self.statement() {
                stmts.push(s);
            } else {
                self.synchronize();
            }
            if self.pos == before {
                self.bump();
            }
        }
        let end = self.span();
        self.expect(TokenKind::RBrace);
        Some(Block {
            stmts,
            span: start.merge(end),
        })
    }

    fn statement(&mut self) -> Option<Stmt> {
        if !self.enter() {
            return None;
        }
        let stmt = self.statement_inner();
        self.leave();
        stmt
    }

    fn statement_inner(&mut self) -> Option<Stmt> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::KwIf => self.if_statement(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen);
                let cond = self.expr()?;
                self.expect(TokenKind::RParen);
                let body = self.block()?;
                let span = start.merge(body.span);
                Some(Stmt::While { cond, body, span })
            }
            TokenKind::KwForeach => {
                self.bump();
                let var = self.ident("loop variable")?;
                self.expect(TokenKind::KwIn);
                let iterable = self.expr()?;
                let body = self.block()?;
                let span = start.merge(body.span);
                Some(Stmt::Foreach {
                    var,
                    iterable,
                    body,
                    span,
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semicolon {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semicolon);
                Some(Stmt::Return {
                    value,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::KwPrint => {
                self.bump();
                let value = self.expr()?;
                self.expect(TokenKind::Semicolon);
                Some(Stmt::Print {
                    value,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::KwMeasure => {
                self.bump();
                let target = self.expr()?;
                self.expect(TokenKind::Semicolon);
                Some(Stmt::Measure {
                    target,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::KwBarrier => {
                self.bump();
                self.expect(TokenKind::Semicolon);
                Some(Stmt::Barrier {
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::KwHadamard => self.gate_statement(GateKind::Hadamard, 1),
            TokenKind::KwNot => self.gate_statement(GateKind::NotGate, 1),
            TokenKind::KwPauliY => self.gate_statement(GateKind::PauliY, 1),
            TokenKind::KwPauliZ => self.gate_statement(GateKind::PauliZ, 1),
            TokenKind::KwPhase => self.gate_statement(GateKind::Phase, 2),
            TokenKind::KwCnot => self.gate_statement(GateKind::CNot, 2),
            TokenKind::LBrace => self.block().map(Stmt::Block),
            _ if self.at_type_keyword() => self.var_decl(),
            _ => self.expr_or_assign_statement(),
        }
    }

    fn if_statement(&mut self) -> Option<Stmt> {
        // Guarded separately: `else if` chains recurse here directly,
        // bypassing `statement`.
        if !self.enter() {
            return None;
        }
        let stmt = self.if_statement_inner();
        self.leave();
        stmt
    }

    fn if_statement_inner(&mut self) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // if
        self.expect(TokenKind::LParen);
        let cond = self.expr()?;
        self.expect(TokenKind::RParen);
        let then_block = self.block()?;
        let else_block = if self.eat(TokenKind::KwElse) {
            if *self.peek() == TokenKind::KwIf {
                // `else if` sugar: wrap the nested if in a block.
                let nested = self.if_statement()?;
                let sp = nested.span();
                Some(Block {
                    stmts: vec![nested],
                    span: sp,
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        let span = start.merge(self.prev_span());
        Some(Stmt::If {
            cond,
            then_block,
            else_block,
            span,
        })
    }

    /// Parses `gate a1, a2, ...;` and also the `gate(a1, a2)` call style.
    fn gate_statement(&mut self, gate: GateKind, arity: usize) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // gate keyword
        let parenthesised = self.eat(TokenKind::LParen);
        let mut args = Vec::new();
        loop {
            args.push(self.expr()?);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        if parenthesised {
            self.expect(TokenKind::RParen);
        }
        self.expect(TokenKind::Semicolon);
        let span = start.merge(self.prev_span());
        if args.len() != arity {
            self.diags.push(Diagnostic::error(
                format!(
                    "'{}' expects {arity} argument{}, found {}",
                    gate.name(),
                    if arity == 1 { "" } else { "s" },
                    args.len()
                ),
                span,
            ));
            return None;
        }
        Some(Stmt::Gate { gate, args, span })
    }

    fn var_decl(&mut self) -> Option<Stmt> {
        let start = self.span();
        let ty = self.parse_type()?;
        let name = self.ident("variable name")?;
        let init = if self.eat(TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Semicolon);
        Some(Stmt::VarDecl {
            ty,
            name,
            init,
            span: start.merge(self.prev_span()),
        })
    }

    fn expr_or_assign_statement(&mut self) -> Option<Stmt> {
        let start = self.span();
        let e = self.expr()?;
        let op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Set),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            TokenKind::ShlAssign => Some(AssignOp::Shl),
            TokenKind::ShrAssign => Some(AssignOp::Shr),
            _ => None,
        };
        if let Some(op) = op {
            let target = match e.kind {
                ExprKind::Var(name) => LValue::Name(name),
                ExprKind::Index(base, idx) => {
                    if let ExprKind::Var(name) = base.kind {
                        LValue::Index(name, *idx)
                    } else {
                        self.diags.push(Diagnostic::error(
                            "assignment target must be a variable or array element",
                            e.span,
                        ));
                        return None;
                    }
                }
                _ => {
                    self.diags.push(Diagnostic::error(
                        "assignment target must be a variable or array element",
                        e.span,
                    ));
                    return None;
                }
            };
            self.bump(); // the operator
            let value = self.expr()?;
            self.expect(TokenKind::Semicolon);
            return Some(Stmt::Assign {
                target,
                op,
                value,
                span: start.merge(self.prev_span()),
            });
        }
        self.expect(TokenKind::Semicolon);
        Some(Stmt::Expr {
            expr: e,
            span: start.merge(self.prev_span()),
        })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Option<Expr> {
        if !self.enter() {
            return None;
        }
        let e = self.or_expr();
        self.leave();
        e
    }

    fn or_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.and_expr()?;
        let mut links = 0usize;
        while self.eat(TokenKind::OrOr) {
            links += 1;
            if links > MAX_NESTING_DEPTH {
                self.depth_error();
                return None;
            }
            let rhs = self.and_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Some(lhs)
    }

    fn and_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.equality_expr()?;
        let mut links = 0usize;
        while self.eat(TokenKind::AndAnd) {
            links += 1;
            if links > MAX_NESTING_DEPTH {
                self.depth_error();
                return None;
            }
            let rhs = self.equality_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Some(lhs)
    }

    fn equality_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.comparison_expr()?;
        let mut links = 0usize;
        loop {
            links += 1;
            if links > MAX_NESTING_DEPTH {
                self.depth_error();
                return None;
            }
            let op = match self.peek() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => return Some(lhs),
            };
            self.bump();
            let rhs = self.comparison_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn comparison_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.shift_expr()?;
        let mut links = 0usize;
        loop {
            links += 1;
            if links > MAX_NESTING_DEPTH {
                self.depth_error();
                return None;
            }
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                TokenKind::KwIn => BinOp::In,
                _ => return Some(lhs),
            };
            self.bump();
            let rhs = self.shift_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn shift_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.additive_expr()?;
        let mut links = 0usize;
        loop {
            links += 1;
            if links > MAX_NESTING_DEPTH {
                self.depth_error();
                return None;
            }
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => return Some(lhs),
            };
            self.bump();
            let rhs = self.additive_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn additive_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.multiplicative_expr()?;
        let mut links = 0usize;
        loop {
            links += 1;
            if links > MAX_NESTING_DEPTH {
                self.depth_error();
                return None;
            }
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Some(lhs),
            };
            self.bump();
            let rhs = self.multiplicative_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn multiplicative_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.unary_expr()?;
        let mut links = 0usize;
        loop {
            links += 1;
            if links > MAX_NESTING_DEPTH {
                self.depth_error();
                return None;
            }
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Some(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn unary_expr(&mut self) -> Option<Expr> {
        // Guarded separately: prefix chains like `----x` or `!!!!x`
        // recurse here without passing through `expr`.
        if !self.enter() {
            return None;
        }
        let e = self.unary_expr_inner();
        self.leave();
        e
    }

    fn unary_expr_inner(&mut self) -> Option<Expr> {
        let start = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                let span = start.merge(e.span);
                Some(Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(e)), span))
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                let span = start.merge(e.span);
                Some(Expr::new(ExprKind::Unary(UnOp::Not, Box::new(e)), span))
            }
            TokenKind::KwMeasure => {
                self.bump();
                let e = self.unary_expr()?;
                let span = start.merge(e.span);
                Some(Expr::new(ExprKind::MeasureExpr(Box::new(e)), span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Option<Expr> {
        let mut e = self.primary_expr()?;
        let mut links = 0usize;
        while *self.peek() == TokenKind::LBracket {
            // Cap chain length: `xs[0][0][0]...` nests the AST one level
            // per index even though this loop is iterative.
            links += 1;
            if links > MAX_NESTING_DEPTH {
                self.depth_error();
                return None;
            }
            self.bump();
            let idx = self.expr()?;
            let end = self.span();
            self.expect(TokenKind::RBracket);
            let span = e.span.merge(end);
            e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), span);
        }
        Some(e)
    }

    fn primary_expr(&mut self) -> Option<Expr> {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                ExprKind::Int(v)
            }
            TokenKind::Float(v) => {
                self.bump();
                ExprKind::Float(v)
            }
            TokenKind::Str(s) => {
                self.bump();
                ExprKind::Str(s)
            }
            TokenKind::Quint(v) => {
                self.bump();
                ExprKind::Quint(v)
            }
            TokenKind::Qustring(s) => {
                self.bump();
                ExprKind::Qustring(s)
            }
            TokenKind::Ket(k) => {
                self.bump();
                ExprKind::Ket(k)
            }
            TokenKind::KwTrue => {
                self.bump();
                ExprKind::Bool(true)
            }
            TokenKind::KwFalse => {
                self.bump();
                ExprKind::Bool(false)
            }
            TokenKind::KwPi => {
                self.bump();
                ExprKind::Pi
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen);
                return Some(Expr::new(e.kind, start.merge(self.prev_span())));
            }
            TokenKind::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                if *self.peek() != TokenKind::RBracket && *self.peek() != TokenKind::RBracketQ {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let quantum = match self.peek() {
                    TokenKind::RBracketQ => {
                        self.bump();
                        true
                    }
                    TokenKind::RBracket => {
                        self.bump();
                        false
                    }
                    other => {
                        let msg = format!("expected ']' or ']q', found {}", other.describe());
                        self.error(msg);
                        return None;
                    }
                };
                let span = start.merge(self.prev_span());
                return Some(Expr::new(
                    if quantum {
                        ExprKind::QuantumArray(elems)
                    } else {
                        ExprKind::Array(elems)
                    },
                    span,
                ));
            }
            // Cast calls: a type keyword used as a function, `int(x)` etc.
            TokenKind::KwInt | TokenKind::KwFloat | TokenKind::KwBool | TokenKind::KwString
                if *self.peek2() == TokenKind::LParen =>
            {
                let name = match self.peek() {
                    TokenKind::KwInt => "int",
                    TokenKind::KwFloat => "float",
                    TokenKind::KwBool => "bool",
                    _ => "str",
                }
                .to_string();
                self.bump(); // keyword
                self.bump(); // '('
                let arg = self.expr()?;
                self.expect(TokenKind::RParen);
                let span = start.merge(self.prev_span());
                return Some(Expr::new(ExprKind::Call(name, vec![arg]), span));
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(TokenKind::LParen) {
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen);
                    let span = start.merge(self.prev_span());
                    return Some(Expr::new(ExprKind::Call(name, args), span));
                }
                ExprKind::Var(name)
            }
            other => {
                let msg = format!("expected an expression, found {}", other.describe());
                self.error(msg);
                return None;
            }
        };
        Some(Expr::new(kind, start.merge(self.prev_span())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Program {
        match parse(src) {
            Ok(p) => p,
            Err(ds) => panic!("parse failed: {ds:?}"),
        }
    }

    fn stmt(src: &str) -> Stmt {
        let p = ok(src);
        assert_eq!(p.items.len(), 1, "expected one item");
        match p.items.into_iter().next().unwrap() {
            Item::Statement(s) => s,
            other => panic!("expected statement, got {other:?}"),
        }
    }

    #[test]
    fn parses_classical_declarations() {
        assert!(matches!(
            stmt("int x = 42;"),
            Stmt::VarDecl {
                ty: Type::Int,
                init: Some(_),
                ..
            }
        ));
        assert!(matches!(
            stmt("float y;"),
            Stmt::VarDecl {
                ty: Type::Float,
                init: None,
                ..
            }
        ));
        assert!(matches!(
            stmt("bool flag = true;"),
            Stmt::VarDecl { ty: Type::Bool, .. }
        ));
        assert!(matches!(
            stmt("string s = \"hi\";"),
            Stmt::VarDecl {
                ty: Type::String,
                ..
            }
        ));
    }

    #[test]
    fn parses_quantum_declarations() {
        let s = stmt("qubit a = |+>;");
        match s {
            Stmt::VarDecl { ty, init, .. } => {
                assert_eq!(ty, Type::Qubit);
                assert!(matches!(init.unwrap().kind, ExprKind::Ket(_)));
            }
            _ => panic!(),
        }
        assert!(matches!(
            stmt("quint n = 5q;"),
            Stmt::VarDecl {
                ty: Type::Quint,
                ..
            }
        ));
        assert!(matches!(
            stmt("qustring t = \"0101\"q;"),
            Stmt::VarDecl {
                ty: Type::Qustring,
                ..
            }
        ));
    }

    #[test]
    fn parses_array_types_and_literals() {
        let s = stmt("int[] a = [1, 2, 3];");
        match s {
            Stmt::VarDecl { ty, init, .. } => {
                assert_eq!(ty, Type::Array(Box::new(Type::Int)));
                assert!(matches!(init.unwrap().kind, ExprKind::Array(v) if v.len() == 3));
            }
            _ => panic!(),
        }
        let s = stmt("quint m = [1, 2, 3]q;");
        match s {
            Stmt::VarDecl { init, .. } => {
                assert!(matches!(init.unwrap().kind, ExprKind::QuantumArray(v) if v.len() == 3));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_function_declaration() {
        let p = ok("int add(int a, int b) { return a + b; }");
        match &p.items[0] {
            Item::Function(f) => {
                assert_eq!(f.name, "add");
                assert_eq!(f.ret_type, Type::Int);
                assert_eq!(f.params.len(), 2);
                assert_eq!(f.body.stmts.len(), 1);
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parses_quantum_function() {
        let p = ok("qubit flip(qubit k) { not k; return k; }");
        match &p.items[0] {
            Item::Function(f) => {
                assert_eq!(f.ret_type, Type::Qubit);
                assert!(matches!(
                    f.body.stmts[0],
                    Stmt::Gate {
                        gate: GateKind::NotGate,
                        ..
                    }
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_void_function() {
        let p = ok("void setup() { barrier; }");
        assert!(matches!(&p.items[0], Item::Function(f) if f.ret_type == Type::Void));
    }

    #[test]
    fn parses_control_flow() {
        let s = stmt("if (x > 0) { print x; } else { print 0; }");
        assert!(matches!(
            s,
            Stmt::If {
                else_block: Some(_),
                ..
            }
        ));
        let s = stmt("while (i < 10) { i += 1; }");
        assert!(matches!(s, Stmt::While { .. }));
        let s = stmt("foreach v in arr { print v; }");
        assert!(matches!(s, Stmt::Foreach { .. }));
    }

    #[test]
    fn parses_else_if_chain() {
        let s = stmt("if (a) { } else if (b) { } else { }");
        match s {
            Stmt::If { else_block, .. } => {
                let inner = &else_block.unwrap().stmts[0];
                assert!(matches!(
                    inner,
                    Stmt::If {
                        else_block: Some(_),
                        ..
                    }
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_gate_statements() {
        assert!(matches!(
            stmt("hadamard q;"),
            Stmt::Gate {
                gate: GateKind::Hadamard,
                ..
            }
        ));
        assert!(matches!(
            stmt("cnot a, b;"),
            Stmt::Gate {
                gate: GateKind::CNot,
                ..
            }
        ));
        assert!(matches!(
            stmt("phase(q, pi / 2);"),
            Stmt::Gate {
                gate: GateKind::Phase,
                ..
            }
        ));
        // Unparenthesised phase also accepted.
        assert!(matches!(
            stmt("phase q, pi;"),
            Stmt::Gate {
                gate: GateKind::Phase,
                ..
            }
        ));
    }

    #[test]
    fn gate_arity_checked() {
        assert!(parse("cnot a;").is_err());
        assert!(parse("hadamard a, b;").is_err());
    }

    #[test]
    fn parses_compound_assignment() {
        assert!(matches!(
            stmt("x += y;"),
            Stmt::Assign {
                op: AssignOp::Add,
                ..
            }
        ));
        assert!(matches!(
            stmt("x <<= 2;"),
            Stmt::Assign {
                op: AssignOp::Shl,
                ..
            }
        ));
        assert!(matches!(
            stmt("a[2] = 5;"),
            Stmt::Assign {
                target: LValue::Index(_, _),
                ..
            }
        ));
    }

    #[test]
    fn parses_in_operator() {
        let s = stmt("bool found = \"01\"q in t;");
        match s {
            Stmt::VarDecl { init: Some(e), .. } => {
                assert!(matches!(e.kind, ExprKind::Binary(BinOp::In, _, _)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_shift_binds_tighter_than_compare() {
        // a << 1 > b parses as (a << 1) > b
        let e = parse_expression("a << 1 > b").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Gt, lhs, _) => {
                assert!(matches!(lhs.kind, ExprKind::Binary(BinOp::Shl, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn measure_expression() {
        let e = parse_expression("measure q").unwrap();
        assert!(matches!(e.kind, ExprKind::MeasureExpr(_)));
        assert!(matches!(stmt("measure q;"), Stmt::Measure { .. }));
    }

    #[test]
    fn call_and_index_expressions() {
        let e = parse_expression("f(1, x)[2]").unwrap();
        assert!(matches!(e.kind, ExprKind::Index(_, _)));
        let e = parse_expression("g()").unwrap();
        assert!(matches!(e.kind, ExprKind::Call(name, args) if name == "g" && args.is_empty()));
    }

    #[test]
    fn error_recovery_reports_multiple() {
        let errs = parse("int x = ;\nint y = 3;\nfloat z = *;").unwrap_err();
        assert!(errs.len() >= 2, "got {errs:?}");
    }

    #[test]
    fn missing_semicolon_reported() {
        let errs = parse("int x = 3").unwrap_err();
        assert!(errs[0].message.contains("';'"));
    }

    #[test]
    fn nested_blocks() {
        let s = stmt("{ int x = 1; { print x; } }");
        match s {
            Stmt::Block(b) => assert_eq!(b.stmts.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn top_level_mixes_functions_and_statements() {
        let p = ok("int one() { return 1; }\nint x = one();\nprint x;");
        assert_eq!(p.items.len(), 3);
        assert!(matches!(p.items[0], Item::Function(_)));
        assert!(matches!(p.items[1], Item::Statement(_)));
    }
}
