//! Pretty-printer: renders an AST back to canonical Qutes source.
//!
//! Used by `qutes fmt`, by the conciseness experiment (E6) for normalised
//! line counting, and by the parser round-trip property tests
//! (`parse(print(parse(src)))` must equal `parse(src)`).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, item) in p.items.iter().enumerate() {
        if i > 0 {
            if let (Item::Function(_), _) | (_, Some(Item::Function(_))) =
                (&p.items[i - 1], p.items.get(i))
            {
                out.push('\n');
            }
        }
        match item {
            Item::Function(f) => print_function(f, &mut out),
            Item::Statement(s) => print_stmt(s, 0, &mut out),
        }
    }
    out
}

/// Renders a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    expr(e, &mut s);
    s
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_function(f: &FunctionDecl, out: &mut String) {
    let _ = write!(out, "{} {}(", f.ret_type, f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", p.ty, p.name);
    }
    out.push_str(") ");
    print_block(&f.body, 0, out);
    out.push('\n');
}

fn print_block(b: &Block, level: usize, out: &mut String) {
    out.push_str("{\n");
    for s in &b.stmts {
        print_stmt(s, level + 1, out);
    }
    indent(level, out);
    out.push('}');
}

fn print_stmt(s: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match s {
        Stmt::VarDecl { ty, name, init, .. } => {
            let _ = write!(out, "{ty} {name}");
            if let Some(e) = init {
                let _ = write!(out, " = {}", print_expr(e));
            }
            out.push_str(";\n");
        }
        Stmt::Assign {
            target, op, value, ..
        } => {
            match target {
                LValue::Name(n) => {
                    let _ = write!(out, "{n}");
                }
                LValue::Index(n, i) => {
                    let _ = write!(out, "{n}[{}]", print_expr(i));
                }
            }
            let _ = writeln!(out, " {op} {};", print_expr(value));
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            let _ = write!(out, "if ({}) ", print_expr(cond));
            print_block(then_block, level, out);
            if let Some(eb) = else_block {
                out.push_str(" else ");
                print_block(eb, level, out);
            }
            out.push('\n');
        }
        Stmt::While { cond, body, .. } => {
            let _ = write!(out, "while ({}) ", print_expr(cond));
            print_block(body, level, out);
            out.push('\n');
        }
        Stmt::Foreach {
            var,
            iterable,
            body,
            ..
        } => {
            let _ = write!(out, "foreach {var} in {} ", print_expr(iterable));
            print_block(body, level, out);
            out.push('\n');
        }
        Stmt::Return { value, .. } => match value {
            Some(e) => {
                let _ = writeln!(out, "return {};", print_expr(e));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::Print { value, .. } => {
            let _ = writeln!(out, "print {};", print_expr(value));
        }
        Stmt::Expr { expr: e, .. } => {
            let _ = writeln!(out, "{};", print_expr(e));
        }
        Stmt::Gate { gate, args, .. } => {
            let rendered: Vec<String> = args.iter().map(print_expr).collect();
            let _ = writeln!(out, "{} {};", gate.name(), rendered.join(", "));
        }
        Stmt::Measure { target, .. } => {
            let _ = writeln!(out, "measure {};", print_expr(target));
        }
        Stmt::Barrier { .. } => out.push_str("barrier;\n"),
        Stmt::Block(b) => {
            print_block(b, level, out);
            out.push('\n');
        }
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '\n' => "\\n".chars().collect::<Vec<_>>(),
            '\t' => "\\t".chars().collect(),
            '"' => "\\\"".chars().collect(),
            '\\' => "\\\\".chars().collect(),
            other => vec![other],
        })
        .collect()
}

fn expr(e: &Expr, out: &mut String) {
    match &e.kind {
        ExprKind::Int(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::Float(v) => {
            let s = format!("{v}");
            let _ = write!(out, "{s}");
            if !s.contains('.') && !s.contains('e') {
                out.push_str(".0");
            }
        }
        ExprKind::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        ExprKind::Str(s) => {
            let _ = write!(out, "\"{}\"", escape(s));
        }
        ExprKind::Quint(v) => {
            let _ = write!(out, "{v}q");
        }
        ExprKind::Qustring(s) => {
            let _ = write!(out, "\"{s}\"q");
        }
        ExprKind::Ket(k) => {
            let _ = write!(out, "{k}");
        }
        ExprKind::Pi => out.push_str("pi"),
        ExprKind::Array(elems) => {
            out.push('[');
            for (i, el) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(el, out);
            }
            out.push(']');
        }
        ExprKind::QuantumArray(elems) => {
            out.push('[');
            for (i, el) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(el, out);
            }
            out.push_str("]q");
        }
        ExprKind::Var(n) => out.push_str(n),
        ExprKind::Index(base, idx) => {
            expr(base, out);
            out.push('[');
            expr(idx, out);
            out.push(']');
        }
        ExprKind::Unary(op, inner) => {
            out.push(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            });
            // Parenthesise compound operands for unambiguous reparsing.
            if matches!(inner.kind, ExprKind::Binary(..)) {
                out.push('(');
                expr(inner, out);
                out.push(')');
            } else {
                expr(inner, out);
            }
        }
        ExprKind::Binary(op, l, r) => {
            // Fully parenthesise: canonical output, trivially correct
            // precedence on re-parse.
            out.push('(');
            expr(l, out);
            let _ = write!(out, " {op} ");
            expr(r, out);
            out.push(')');
        }
        ExprKind::Call(name, args) => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(a, out);
            }
            out.push(')');
        }
        ExprKind::MeasureExpr(inner) => {
            out.push_str("measure ");
            expr(inner, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let p1 = parse(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse of:\n{printed}\n{e:?}"));
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "printer not a fixpoint for:\n{src}");
    }

    #[test]
    fn roundtrips_declarations() {
        roundtrip("int x = 42;\nqubit a = |+>;\nquint m = [1, 2, 3]q;\nqustring t = \"01\"q;");
    }

    #[test]
    fn roundtrips_functions_and_control_flow() {
        roundtrip(
            "int add(int a, int b) { return a + b; }\n\
             if (add(1, 2) > 2) { print \"big\"; } else { print \"small\"; }\n\
             while (x < 10) { x += 1; }\n\
             foreach v in [1, 2] { print v; }",
        );
    }

    #[test]
    fn roundtrips_gates_and_quantum_ops() {
        roundtrip(
            "qubit q = 0q;\nhadamard q;\nnot q;\npauliy q;\npauliz q;\n\
             phase(q, pi / 2);\nqubit r = 1q;\ncnot q, r;\nmeasure q;\nbarrier;",
        );
    }

    #[test]
    fn roundtrips_operators() {
        roundtrip("bool b = (\"01\"q in t) && !(x == 3) || (n << 1) >= 4;");
    }

    #[test]
    fn expression_formatting() {
        let e = crate::parser::parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(print_expr(&e), "(1 + (2 * 3))");
        let e = crate::parser::parse_expression("-x").unwrap();
        assert_eq!(print_expr(&e), "-x");
        let e = crate::parser::parse_expression("-(1 + 2)").unwrap();
        assert_eq!(print_expr(&e), "-((1 + 2))");
    }

    #[test]
    fn string_escapes_roundtrip() {
        roundtrip("string s = \"a\\nb\\\"c\\\\d\";");
    }

    #[test]
    fn float_always_reparses_as_float() {
        let e = crate::parser::parse_expression("2.0").unwrap();
        assert_eq!(print_expr(&e), "2.0");
    }
}
