//! # qutes-sim
//!
//! Dense statevector quantum simulator — the execution substrate for the
//! Qutes language, standing in for the Qiskit/Aer backend used by the
//! original paper ("Qutes: A High-Level Quantum Programming Language for
//! Simplified Quantum Computing", Faro, Marino & Messina, HPDC 2025).
//!
//! Features:
//! * own [`complex::Complex64`] (no external numerics dependency),
//! * single-qubit, multi-controlled, swap and diagonal-oracle kernels,
//! * automatic multi-threading for large states (scoped threads, block-
//!   aligned partitioning, zero synchronisation inside kernels),
//! * collapsing measurement, measure-and-reset, and non-collapsing shot
//!   sampling driven by any [`rand::Rng`].
//!
//! ```
//! use qutes_sim::{StateVector, gates, measure};
//! use rand::SeedableRng;
//!
//! // Build and measure a Bell pair.
//! let mut sv = StateVector::new(2).unwrap();
//! sv.apply_single(&gates::h(), 0).unwrap();
//! sv.apply_controlled(&gates::x(), &[0], 1).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let a = measure::measure_qubit(&mut sv, 0, &mut rng).unwrap();
//! let b = measure::measure_qubit(&mut sv, 1, &mut rng).unwrap();
//! assert_eq!(a, b);
//! ```

#![deny(missing_docs)]

pub mod complex;
pub mod error;
pub mod gates;
pub mod measure;
pub mod noise;
pub mod parallel;
pub mod rng_stream;
pub mod state;
pub mod tableau;

pub use complex::{c64, Complex64};
pub use error::{SimError, SimResult};
pub use gates::{Matrix2, Matrix4, Matrix8};
pub use noise::NoiseModel;
pub use state::{uniform_superposition, StateVector, MAX_QUBITS};
pub use tableau::{Tableau, TABLEAU_MAX_QUBITS};
