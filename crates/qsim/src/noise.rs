//! Monte-Carlo trajectory noise channels.
//!
//! Real devices are not the perfect statevector this crate simulates:
//! gates misfire, qubits relax, and readout lies. This module models
//! those faults with the **stochastic trajectory** method used by
//! Qiskit Aer and the state-vector emulators in the related literature:
//! instead of evolving a density matrix (which squares memory), each
//! *shot* samples one concrete fault pattern — after every gate, each
//! touched qubit may suffer a Pauli error or an amplitude-damping decay
//! with the configured probability, and each measured bit may be
//! reported flipped. Averaged over shots, the trajectory ensemble
//! reproduces the channel's density-matrix action.
//!
//! All randomness is drawn from the caller's seeded [`Rng`], so a run
//! is exactly reproducible from its seed. Channels with probability
//! zero draw **no** random numbers: a [`NoiseModel::none`] model
//! consumes the RNG stream identically to no model at all, which keeps
//! seeded noiseless runs bit-identical whether or not a model is
//! attached (and is relied on by the execution layer's fast-path
//! selection).
//!
//! ```
//! use qutes_sim::NoiseModel;
//!
//! let nm = NoiseModel::depolarizing(0.01).with_readout_error(0.02);
//! nm.validate().unwrap();
//! assert!(!nm.is_noiseless());
//! assert!(NoiseModel::none().is_noiseless());
//! ```

use crate::error::{SimError, SimResult};
use crate::gates;
use crate::state::StateVector;
use rand::Rng;

/// Per-gate and per-measurement fault probabilities.
///
/// Each field is an independent channel applied after every gate to the
/// qubits that gate touched (except `readout_error`, which applies to
/// measured bits). Probabilities are per-gate-application, not
/// per-circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseModel {
    /// Probability of an X error on each touched qubit.
    pub bit_flip: f64,
    /// Probability of a Z error on each touched qubit.
    pub phase_flip: f64,
    /// Probability of a uniformly random Pauli (X, Y or Z) error on the
    /// qubit of a single-qubit gate.
    pub depolarizing_1q: f64,
    /// Probability of a uniformly random Pauli error on **each** qubit
    /// touched by a multi-qubit gate (typically set several times higher
    /// than `depolarizing_1q`, matching hardware two-qubit error rates).
    pub depolarizing_2q: f64,
    /// Probability that an excited qubit relaxes `|1> -> |0>` at each
    /// gate application (the T1 decay analogue, Kraus damping rate γ).
    pub amplitude_damping: f64,
    /// Probability that a measured classical bit is reported flipped.
    pub readout_error: f64,
}

impl NoiseModel {
    /// The all-zeros model: attached but behaviourally silent — draws no
    /// randomness and perturbs nothing.
    pub fn none() -> Self {
        NoiseModel {
            bit_flip: 0.0,
            phase_flip: 0.0,
            depolarizing_1q: 0.0,
            depolarizing_2q: 0.0,
            amplitude_damping: 0.0,
            readout_error: 0.0,
        }
    }

    /// A symmetric depolarizing model: every gate depolarizes each
    /// touched qubit with probability `p` (same rate for one- and
    /// two-qubit gates), no damping or readout error.
    pub fn depolarizing(p: f64) -> Self {
        NoiseModel {
            depolarizing_1q: p,
            depolarizing_2q: p,
            ..NoiseModel::none()
        }
    }

    /// Sets the bit-flip probability.
    pub fn with_bit_flip(mut self, p: f64) -> Self {
        self.bit_flip = p;
        self
    }

    /// Sets the phase-flip probability.
    pub fn with_phase_flip(mut self, p: f64) -> Self {
        self.phase_flip = p;
        self
    }

    /// Sets the amplitude-damping rate γ.
    pub fn with_amplitude_damping(mut self, gamma: f64) -> Self {
        self.amplitude_damping = gamma;
        self
    }

    /// Sets the readout bit-flip probability.
    pub fn with_readout_error(mut self, p: f64) -> Self {
        self.readout_error = p;
        self
    }

    /// Checks every probability is a finite value in `[0, 1]`.
    pub fn validate(&self) -> SimResult<()> {
        for (name, p) in [
            ("bit_flip", self.bit_flip),
            ("phase_flip", self.phase_flip),
            ("depolarizing_1q", self.depolarizing_1q),
            ("depolarizing_2q", self.depolarizing_2q),
            ("amplitude_damping", self.amplitude_damping),
            ("readout_error", self.readout_error),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(SimError::InvalidState(format!(
                    "noise probability {name} = {p} is outside [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// True when every channel has probability zero, i.e. the model is
    /// behaviourally identical to no model (the execution layer uses
    /// this to keep its noiseless fast path).
    pub fn is_noiseless(&self) -> bool {
        self.bit_flip == 0.0
            && self.phase_flip == 0.0
            && self.depolarizing_1q == 0.0
            && self.depolarizing_2q == 0.0
            && self.amplitude_damping == 0.0
            && self.readout_error == 0.0
    }

    /// Applies one trajectory sample of every gate-level channel to the
    /// qubits a gate just touched. Call after each gate application.
    ///
    /// The depolarizing rate is chosen by gate arity: `depolarizing_1q`
    /// when the gate touched one qubit, `depolarizing_2q` per qubit
    /// otherwise. Channels at probability zero draw no randomness.
    pub fn apply_gate_noise<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        qubits: &[usize],
        rng: &mut R,
    ) -> SimResult<()> {
        let depol = if qubits.len() <= 1 {
            self.depolarizing_1q
        } else {
            self.depolarizing_2q
        };
        for &q in qubits {
            if self.bit_flip > 0.0 && rng.random::<f64>() < self.bit_flip {
                qutes_obs::counter_add("noise.faults.bit_flip", 1);
                state.apply_single(&gates::x(), q)?;
            }
            if self.phase_flip > 0.0 && rng.random::<f64>() < self.phase_flip {
                qutes_obs::counter_add("noise.faults.phase_flip", 1);
                state.apply_single(&gates::z(), q)?;
            }
            if depol > 0.0 && rng.random::<f64>() < depol {
                qutes_obs::counter_add("noise.faults.depolarizing", 1);
                let pauli = match rng.random_range(0..3u8) {
                    0 => gates::x(),
                    1 => gates::y(),
                    _ => gates::z(),
                };
                state.apply_single(&pauli, q)?;
            }
            if self.amplitude_damping > 0.0 {
                self.damp(state, q, rng)?;
            }
        }
        Ok(())
    }

    /// One amplitude-damping trajectory step on `q` with rate γ:
    /// with probability `γ * P(|1>)` the qubit decays (collapse to `|1>`
    /// then flip to `|0>`, the "photon emitted" branch); otherwise the
    /// no-jump Kraus operator `diag(1, sqrt(1-γ))` is applied and the
    /// state renormalised.
    fn damp<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        q: usize,
        rng: &mut R,
    ) -> SimResult<()> {
        let gamma = self.amplitude_damping;
        let p1 = state.probability_one(q)?;
        if rng.random::<f64>() < gamma * p1 {
            qutes_obs::counter_add("noise.faults.damping_jump", 1);
            // Jump branch: the qubit was |1> and relaxed to |0>.
            state.collapse_qubit(q, true)?;
            state.flip_if_one(q)?;
        } else if p1 > 1e-12 {
            // No-jump branch: |1> amplitude shrinks by sqrt(1-γ).
            let k0 = gates::Matrix2::new(
                crate::complex::Complex64::ONE,
                crate::complex::Complex64::ZERO,
                crate::complex::Complex64::ZERO,
                crate::c64((1.0 - gamma).sqrt(), 0.0),
            );
            state.apply_single(&k0, q)?;
            state.renormalize()?;
        }
        Ok(())
    }

    /// Applies the readout channel to one measured bit: flips it with
    /// probability `readout_error`. Draws no randomness at rate zero.
    pub fn flip_readout<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> bool {
        if self.readout_error > 0.0 && rng.random::<f64>() < self.readout_error {
            qutes_obs::counter_add("noise.faults.readout", 1);
            !bit
        } else {
            bit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_noiseless_and_valid() {
        let m = NoiseModel::none();
        assert!(m.is_noiseless());
        assert!(m.validate().is_ok());
        assert!(!NoiseModel::depolarizing(0.1).is_noiseless());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        assert!(NoiseModel::depolarizing(1.5).validate().is_err());
        assert!(NoiseModel::none().with_bit_flip(-0.1).validate().is_err());
        assert!(NoiseModel::none()
            .with_readout_error(f64::NAN)
            .validate()
            .is_err());
    }

    #[test]
    fn zero_model_draws_no_randomness_and_leaves_state_alone() {
        let mut sv = StateVector::new(3).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        let before = sv.amplitudes().to_vec();

        let mut rng = StdRng::seed_from_u64(11);
        let baseline = rng.clone().next_u64();
        NoiseModel::none()
            .apply_gate_noise(&mut sv, &[0, 1, 2], &mut rng)
            .unwrap();
        assert!(NoiseModel::none().flip_readout(true, &mut rng));
        assert_eq!(rng.next_u64(), baseline, "none() consumed RNG draws");
        assert_eq!(sv.amplitudes(), &before[..]);
    }

    #[test]
    fn bit_flip_at_certainty_flips() {
        let mut sv = StateVector::new(1).unwrap();
        let m = NoiseModel::none().with_bit_flip(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        m.apply_gate_noise(&mut sv, &[0], &mut rng).unwrap();
        assert!((sv.probability_one(0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn readout_error_at_certainty_flips() {
        let m = NoiseModel::none().with_readout_error(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!m.flip_readout(true, &mut rng));
        assert!(m.flip_readout(false, &mut rng));
    }

    #[test]
    fn amplitude_damping_fully_relaxes_at_gamma_one() {
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_single(&gates::x(), 0).unwrap();
        let m = NoiseModel::none().with_amplitude_damping(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        m.apply_gate_noise(&mut sv, &[0], &mut rng).unwrap();
        assert!(sv.probability_one(0).unwrap() < 1e-12);
    }

    #[test]
    fn amplitude_damping_decays_plus_state_toward_zero() {
        // Average over trajectories: |+> under damping γ=0.5 should show
        // P(1) well below 0.5.
        let mut ones = 0usize;
        let shots = 400;
        let m = NoiseModel::none().with_amplitude_damping(0.5);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..shots {
            let mut sv = StateVector::new(1).unwrap();
            sv.apply_single(&gates::h(), 0).unwrap();
            m.apply_gate_noise(&mut sv, &[0], &mut rng).unwrap();
            if measure::measure_qubit(&mut sv, 0, &mut rng).unwrap() {
                ones += 1;
            }
        }
        let p1 = ones as f64 / shots as f64;
        assert!(p1 < 0.4, "damping failed to bias toward |0>: P(1)={p1}");
    }

    #[test]
    fn depolarizing_randomises_basis_state() {
        // |0> under heavy depolarizing noise should sometimes read 1.
        let m = NoiseModel::depolarizing(0.75);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ones = 0usize;
        let shots = 300;
        for _ in 0..shots {
            let mut sv = StateVector::new(1).unwrap();
            m.apply_gate_noise(&mut sv, &[0], &mut rng).unwrap();
            if measure::measure_qubit(&mut sv, 0, &mut rng).unwrap() {
                ones += 1;
            }
        }
        assert!(ones > 0, "depolarizing never flipped |0>");
        assert!(ones < shots, "depolarizing always flipped |0>");
    }

    #[test]
    fn two_qubit_rate_selected_for_multi_qubit_gates() {
        // 1q rate zero, 2q rate one: single-qubit application is silent,
        // two-qubit application flips deterministically.
        let m = NoiseModel {
            depolarizing_1q: 0.0,
            depolarizing_2q: 1.0,
            ..NoiseModel::none()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut sv = StateVector::new(2).unwrap();
        let before = sv.amplitudes().to_vec();
        m.apply_gate_noise(&mut sv, &[0], &mut rng).unwrap();
        assert_eq!(sv.amplitudes(), &before[..]);
        m.apply_gate_noise(&mut sv, &[0, 1], &mut rng).unwrap();
        assert_ne!(sv.amplitudes(), &before[..]);
    }

    #[test]
    fn trajectories_are_reproducible_from_seed() {
        let m = NoiseModel::depolarizing(0.3)
            .with_amplitude_damping(0.1)
            .with_bit_flip(0.05);
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut sv = StateVector::new(2).unwrap();
            sv.apply_single(&gates::h(), 0).unwrap();
            for _ in 0..10 {
                m.apply_gate_noise(&mut sv, &[0, 1], &mut rng).unwrap();
            }
            sv.amplitudes().to_vec()
        };
        assert_eq!(run(), run());
    }
}
