//! Measurement: collapsing single- and multi-qubit measurements and
//! non-collapsing shot sampling.
//!
//! All randomness flows through a caller-supplied [`rand::Rng`], so the
//! Qutes runtime (and every test) can be made deterministic with a seeded
//! `StdRng`.
//!
//! ```
//! use qutes_sim::{gates, measure, StateVector};
//! use rand::SeedableRng;
//!
//! let mut sv = StateVector::new(1).unwrap();
//! sv.apply_single(&gates::x(), 0).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // |1> measures to 1 with certainty, and the state stays collapsed.
//! assert!(measure::measure_qubit(&mut sv, 0, &mut rng).unwrap());
//! assert!((sv.probability_one(0).unwrap() - 1.0).abs() < 1e-12);
//! ```

use crate::error::SimResult;
use crate::state::StateVector;
use rand::Rng;
use std::collections::HashMap;

/// Measures a single qubit in the computational basis, collapsing the
/// state. Returns the observed bit.
pub fn measure_qubit<R: Rng + ?Sized>(
    state: &mut StateVector,
    qubit: usize,
    rng: &mut R,
) -> SimResult<bool> {
    let p1 = state.probability_one(qubit)?;
    let outcome = rng.random::<f64>() < p1;
    state.collapse_qubit(qubit, outcome)?;
    Ok(outcome)
}

/// Measures several qubits (in order), collapsing the state. Bit `k` of
/// the returned value is the outcome for `qubits[k]`.
pub fn measure_qubits<R: Rng + ?Sized>(
    state: &mut StateVector,
    qubits: &[usize],
    rng: &mut R,
) -> SimResult<usize> {
    let mut result = 0usize;
    for (k, &q) in qubits.iter().enumerate() {
        if measure_qubit(state, q, rng)? {
            result |= 1 << k;
        }
    }
    Ok(result)
}

/// Measures every qubit, collapsing to a single basis state. Returns the
/// basis index.
pub fn measure_all<R: Rng + ?Sized>(state: &mut StateVector, rng: &mut R) -> SimResult<usize> {
    let qubits: Vec<usize> = (0..state.num_qubits()).collect();
    measure_qubits(state, &qubits, rng)
}

/// Measures `qubit` and then resets it to `|0>` (measure-and-reset, the
/// non-unitary `reset` primitive). Returns the pre-reset outcome.
pub fn measure_and_reset<R: Rng + ?Sized>(
    state: &mut StateVector,
    qubit: usize,
    rng: &mut R,
) -> SimResult<bool> {
    let outcome = measure_qubit(state, qubit, rng)?;
    if outcome {
        state.flip_if_one(qubit)?;
    }
    Ok(outcome)
}

/// Draws `shots` independent samples of the joint outcome on `qubits`
/// **without collapsing** the state, returning outcome -> count.
///
/// This mirrors how Qiskit executes a measured circuit many times; the
/// Qutes runtime uses it for `print`-style inspection while using the
/// collapsing measurements above for program semantics.
pub fn sample_counts<R: Rng + ?Sized>(
    state: &StateVector,
    qubits: &[usize],
    shots: usize,
    rng: &mut R,
) -> SimResult<HashMap<usize, usize>> {
    let marginal = state.marginal_probabilities(qubits)?;
    // Cumulative distribution for inverse-transform sampling.
    let mut cdf = Vec::with_capacity(marginal.len());
    let mut acc = 0.0f64;
    for &p in &marginal {
        acc += p;
        cdf.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    let mut counts = HashMap::new();
    for _ in 0..shots {
        let r = rng.random::<f64>() * total;
        let idx = cdf.partition_point(|&c| c < r).min(marginal.len() - 1);
        *counts.entry(idx).or_insert(0) += 1;
    }
    Ok(counts)
}

/// Returns the single most probable joint outcome on `qubits` (ties broken
/// toward the smaller index). Useful for noiseless algorithm checks where
/// sampling would only add variance.
pub fn most_probable_outcome(state: &StateVector, qubits: &[usize]) -> SimResult<usize> {
    let marginal = state.marginal_probabilities(qubits)?;
    let mut best = 0usize;
    let mut best_p = -1.0f64;
    for (i, &p) in marginal.iter().enumerate() {
        if p > best_p {
            best_p = p;
            best = i;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn measuring_basis_state_is_deterministic() {
        let mut r = rng();
        let mut sv = StateVector::from_basis_state(3, 0b101).unwrap();
        assert!(measure_qubit(&mut sv, 0, &mut r).unwrap());
        assert!(!measure_qubit(&mut sv, 1, &mut r).unwrap());
        assert!(measure_qubit(&mut sv, 2, &mut r).unwrap());
    }

    #[test]
    fn measure_all_returns_basis_index() {
        let mut r = rng();
        let mut sv = StateVector::from_basis_state(4, 0b1010).unwrap();
        assert_eq!(measure_all(&mut sv, &mut r).unwrap(), 0b1010);
    }

    #[test]
    fn bell_pair_measurements_are_correlated() {
        let mut r = rng();
        for _ in 0..50 {
            let mut sv = StateVector::new(2).unwrap();
            sv.apply_single(&gates::h(), 0).unwrap();
            sv.apply_controlled(&gates::x(), &[0], 1).unwrap();
            let a = measure_qubit(&mut sv, 0, &mut r).unwrap();
            let b = measure_qubit(&mut sv, 1, &mut r).unwrap();
            assert_eq!(a, b, "Bell pair outcomes must be perfectly correlated");
        }
    }

    #[test]
    fn uniform_qubit_is_roughly_fair() {
        let mut r = rng();
        let mut ones = 0;
        let n = 2000;
        for _ in 0..n {
            let mut sv = StateVector::new(1).unwrap();
            sv.apply_single(&gates::h(), 0).unwrap();
            if measure_qubit(&mut sv, 0, &mut r).unwrap() {
                ones += 1;
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn measurement_collapses_state() {
        let mut r = rng();
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        let first = measure_qubit(&mut sv, 0, &mut r).unwrap();
        // Re-measuring must repeat the same outcome forever.
        for _ in 0..10 {
            assert_eq!(measure_qubit(&mut sv, 0, &mut r).unwrap(), first);
        }
    }

    #[test]
    fn measure_and_reset_zeroes_qubit() {
        let mut r = rng();
        let mut sv = StateVector::from_basis_state(2, 0b11).unwrap();
        let out = measure_and_reset(&mut sv, 0, &mut r).unwrap();
        assert!(out);
        assert!((sv.probability_one(0).unwrap()).abs() < 1e-12);
        // Other qubit untouched.
        assert!((sv.probability_one(1).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_counts_does_not_collapse() {
        let mut r = rng();
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        sv.apply_controlled(&gates::x(), &[0], 1).unwrap();
        let before = sv.probabilities();
        let counts = sample_counts(&sv, &[0, 1], 1000, &mut r).unwrap();
        assert_eq!(sv.probabilities(), before);
        let c00 = *counts.get(&0b00).unwrap_or(&0);
        let c11 = *counts.get(&0b11).unwrap_or(&0);
        assert_eq!(c00 + c11, 1000, "only correlated outcomes possible");
        assert!(c00 > 350 && c11 > 350, "c00={c00} c11={c11}");
    }

    #[test]
    fn sample_counts_subset_ordering() {
        let mut r = rng();
        // |q1 q0> = |10>: sampling [1] alone must give outcome 1.
        let sv = StateVector::from_basis_state(2, 0b10).unwrap();
        let counts = sample_counts(&sv, &[1], 100, &mut r).unwrap();
        assert_eq!(*counts.get(&1).unwrap(), 100);
    }

    #[test]
    fn most_probable_outcome_picks_peak() {
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_single(&gates::x(), 1).unwrap();
        assert_eq!(most_probable_outcome(&sv, &[0, 1]).unwrap(), 0b10);
    }

    #[test]
    fn measure_qubits_bit_order() {
        let mut r = rng();
        let mut sv = StateVector::from_basis_state(3, 0b100).unwrap();
        // qubits listed high-to-low: result bit 0 = qubit 2's outcome.
        let out = measure_qubits(&mut sv, &[2, 1, 0], &mut r).unwrap();
        assert_eq!(out, 0b001);
    }
}
