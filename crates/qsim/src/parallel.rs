//! Scoped-thread parallel driver for gate kernels.
//!
//! A single-qubit gate on target `t` touches amplitude pairs that live
//! entirely inside aligned blocks of `2^(t+1)` amplitudes, so the amplitude
//! vector can be split at block boundaries and each piece processed by an
//! independent thread with no synchronisation. The same property holds for
//! every kernel in this crate (controlled gates, swaps, diagonal oracles),
//! so they all funnel through [`for_each_block`].
//!
//! ```
//! use qutes_sim::complex::c64;
//! use qutes_sim::parallel::for_each_block;
//!
//! // Double every amplitude, processing aligned blocks of 2.
//! let mut amps = vec![c64(1.0, 0.0); 4];
//! for_each_block(&mut amps, 2, false, |chunk, _offset| {
//!     for a in chunk {
//!         *a = *a + *a;
//!     }
//! });
//! assert!(amps.iter().all(|a| a.re == 2.0));
//! ```

use crate::complex::Complex64;
use qutes_supervisor::{Interrupt, StopReason};
use std::sync::OnceLock;

/// Amplitude-vector length below which kernels always run serially.
/// 2^14 amplitudes (~14 qubits, 256 KiB) is where thread spawn overhead
/// stops dominating on typical hardware; E7 in `EXPERIMENTS.md` measures
/// the crossover.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Number of worker threads used for parallel kernels (cached).
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    })
}

/// Runs `f(chunk, global_offset)` over `amps` split into block-aligned
/// chunks. `block` must be a power of two that divides `amps.len()` (the
/// statevector guarantees this). When `parallel` is false or the vector is
/// small, the kernel runs on the calling thread.
pub fn for_each_block<F>(amps: &mut [Complex64], block: usize, parallel: bool, f: F)
where
    F: Fn(&mut [Complex64], usize) + Sync,
{
    debug_assert!(block.is_power_of_two());
    debug_assert_eq!(amps.len() % block, 0, "block must divide amplitude count");
    let len = amps.len();
    let nt = num_threads();
    if !parallel || len < PAR_THRESHOLD || nt <= 1 || len <= block {
        qutes_obs::counter_add("kernel.dispatch.serial", 1);
        f(amps, 0);
        return;
    }
    qutes_obs::counter_add("kernel.dispatch.parallel", 1);
    let blocks = len / block;
    let per_thread = blocks.div_ceil(nt) * block;
    std::thread::scope(|s| {
        let mut rest = amps;
        let mut offset = 0usize;
        let f = &f;
        while !rest.is_empty() {
            let take = per_thread.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let o = offset;
            s.spawn(move || f(head, o));
            offset += take;
            rest = tail;
        }
    });
}

/// Splits a kernel chunk into its aligned blocks, yielding
/// `(chunk_relative_base, block_slice)` pairs.
///
/// This is the cache-blocked traversal skeleton shared by the gate
/// kernels: every chunk handed out by [`for_each_block`] /
/// [`for_each_block_interruptible`] is a whole number of `block`-sized,
/// `block`-aligned tiles, so kernels iterate tiles and hoist their
/// per-block bit-mask arithmetic (control tests, wire strides) out of
/// the per-amplitude loops. The compiler sees fixed-length
/// `chunks_exact_mut` slices, which also unlocks bounds-check
/// elimination in the inner loops.
#[inline]
pub fn blocks_mut(
    chunk: &mut [Complex64],
    block: usize,
) -> impl Iterator<Item = (usize, &mut [Complex64])> {
    debug_assert_eq!(chunk.len() % block, 0, "chunk is a whole number of blocks");
    chunk
        .chunks_exact_mut(block)
        .enumerate()
        .map(move |(i, tile)| (i * block, tile))
}

/// Amplitudes processed between deadline checks when an [`Interrupt`]
/// is armed. 2^16 amplitudes (1 MiB) keeps the check amortised far
/// below 1% of kernel time while still bounding response latency to a
/// fraction of a millisecond per check at any qubit count.
pub const CHECK_STRIDE: usize = 1 << 16;

/// Interrupt-aware variant of [`for_each_block`]. With an unarmed
/// handle this is *exactly* the legacy path (one `is_armed` load of
/// overhead); when armed, the amplitude vector is processed in
/// [`CHECK_STRIDE`]-sized slices with a cooperative deadline check
/// between slices.
///
/// On `Err` the amplitude vector may be partially updated: an
/// interrupted state is abandoned by every caller, never observed.
pub fn for_each_block_interruptible<F>(
    amps: &mut [Complex64],
    block: usize,
    parallel: bool,
    intr: &Interrupt,
    f: F,
) -> Result<(), StopReason>
where
    F: Fn(&mut [Complex64], usize) + Sync,
{
    if !intr.is_armed() {
        for_each_block(amps, block, parallel, f);
        return Ok(());
    }
    debug_assert!(block.is_power_of_two());
    debug_assert_eq!(amps.len() % block, 0, "block must divide amplitude count");
    // Both powers of two, so the larger is a multiple of the smaller and
    // every slice below is a whole number of blocks.
    let stride = block.max(CHECK_STRIDE);
    let len = amps.len();
    let nt = num_threads();
    if !parallel || len < PAR_THRESHOLD || nt <= 1 || len <= block {
        qutes_obs::counter_add("kernel.dispatch.serial", 1);
        let mut offset = 0usize;
        for slice in amps.chunks_mut(stride) {
            intr.check()?;
            qutes_obs::counter_add("stage.kernel.checkpoints", 1);
            f(slice, offset);
            offset += slice.len();
        }
        return Ok(());
    }
    qutes_obs::counter_add("kernel.dispatch.parallel", 1);
    let blocks = len / block;
    let per_thread = blocks.div_ceil(nt) * block;
    std::thread::scope(|s| {
        let mut rest = amps;
        let mut offset = 0usize;
        let f = &f;
        while !rest.is_empty() {
            let take = per_thread.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let o = offset;
            s.spawn(move || {
                let mut local = 0usize;
                for slice in head.chunks_mut(stride) {
                    // Workers bail early once the shared handle trips;
                    // the joining thread reports the reason below.
                    if intr.check().is_err() {
                        return;
                    }
                    qutes_obs::counter_add("stage.kernel.checkpoints", 1);
                    f(slice, o + local);
                    local += slice.len();
                }
            });
            offset += take;
            rest = tail;
        }
    });
    // Cancellation and deadlines are monotonic, so a worker that bailed
    // is always reflected here.
    intr.check()
}

/// Parallel sum of `g(amp, index)` over the amplitude vector. Used for
/// probability and expectation reductions.
pub fn sum_reduce<G>(amps: &[Complex64], parallel: bool, g: G) -> f64
where
    G: Fn(Complex64, usize) -> f64 + Sync,
{
    let len = amps.len();
    let nt = num_threads();
    if !parallel || len < PAR_THRESHOLD || nt <= 1 {
        return amps.iter().enumerate().map(|(i, &a)| g(a, i)).sum();
    }
    let per_thread = len.div_ceil(nt);
    let mut partials = vec![0.0f64; len.div_ceil(per_thread)];
    std::thread::scope(|s| {
        let g = &g;
        for (slot, (ci, chunk)) in partials.iter_mut().zip(amps.chunks(per_thread).enumerate()) {
            s.spawn(move || {
                let base = ci * per_thread;
                *slot = chunk.iter().enumerate().map(|(i, &a)| g(a, base + i)).sum();
            });
        }
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn for_each_block_serial_covers_all() {
        let mut amps = vec![c64(1.0, 0.0); 8];
        for_each_block(&mut amps, 2, false, |chunk, off| {
            for (i, a) in chunk.iter_mut().enumerate() {
                *a = c64((off + i) as f64, 0.0);
            }
        });
        for (i, a) in amps.iter().enumerate() {
            assert_eq!(a.re, i as f64);
        }
    }

    #[test]
    fn for_each_block_parallel_matches_serial() {
        let n = PAR_THRESHOLD * 2;
        let mut a = vec![c64(0.0, 0.0); n];
        let mut b = vec![c64(0.0, 0.0); n];
        let kernel = |chunk: &mut [Complex64], off: usize| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = c64(((off + i) % 97) as f64, 0.0);
            }
        };
        for_each_block(&mut a, 4, false, kernel);
        for_each_block(&mut b, 4, true, kernel);
        assert_eq!(a, b);
    }

    #[test]
    fn interruptible_unarmed_matches_legacy() {
        let n = PAR_THRESHOLD * 2;
        let mut a = vec![c64(0.0, 0.0); n];
        let mut b = vec![c64(0.0, 0.0); n];
        let kernel = |chunk: &mut [Complex64], off: usize| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = c64(((off + i) % 89) as f64, 0.0);
            }
        };
        for_each_block(&mut a, 4, true, kernel);
        let intr = Interrupt::new();
        for_each_block_interruptible(&mut b, 4, true, &intr, kernel)
            .expect("unarmed never interrupts");
        assert_eq!(a, b);
    }

    #[test]
    fn interruptible_armed_matches_legacy() {
        let n = PAR_THRESHOLD * 2;
        let mut a = vec![c64(0.0, 0.0); n];
        let mut b = vec![c64(0.0, 0.0); n];
        let mut c = vec![c64(0.0, 0.0); n];
        let kernel = |chunk: &mut [Complex64], off: usize| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = c64(((off + i) % 89) as f64, 0.0);
            }
        };
        for_each_block(&mut a, 4, false, kernel);
        // A generous armed deadline must not change results, serial or
        // parallel.
        let intr = Interrupt::with_deadline(std::time::Duration::from_secs(600));
        for_each_block_interruptible(&mut b, 4, false, &intr, kernel).expect("deadline far away");
        for_each_block_interruptible(&mut c, 4, true, &intr, kernel).expect("deadline far away");
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn interruptible_cancel_stops_work() {
        let n = PAR_THRESHOLD * 2;
        let mut amps = vec![c64(0.0, 0.0); n];
        let intr = Interrupt::new();
        intr.cancel();
        let err = for_each_block_interruptible(&mut amps, 4, false, &intr, |_, _| {})
            .expect_err("cancelled handle must interrupt");
        assert_eq!(err, StopReason::Cancelled);
    }

    #[test]
    fn sum_reduce_matches_serial() {
        let n = PAR_THRESHOLD * 2;
        let amps: Vec<_> = (0..n).map(|i| c64((i % 13) as f64, 0.0)).collect();
        let serial = sum_reduce(&amps, false, |a, _| a.re);
        let parallel = sum_reduce(&amps, true, |a, _| a.re);
        assert!((serial - parallel).abs() < 1e-6 * serial.max(1.0));
    }

    #[test]
    fn sum_reduce_uses_index() {
        let amps = vec![c64(1.0, 0.0); 8];
        let s = sum_reduce(&amps, false, |_, i| i as f64);
        assert_eq!(s, 28.0);
    }
}
