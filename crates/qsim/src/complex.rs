//! A minimal, fully-tested complex number type.
//!
//! The workspace deliberately avoids `num-complex` (not in the approved
//! dependency set), so the simulator carries its own `Complex64`. Only the
//! operations a statevector simulator needs are implemented: arithmetic,
//! conjugation, modulus, and the polar helpers used to build phase gates.
//!
//! ```
//! use qutes_sim::complex::c64;
//!
//! let i = c64(0.0, 1.0);
//! assert_eq!(i * i, c64(-1.0, 0.0));
//! assert_eq!(i.conj(), c64(0.0, -1.0));
//! assert!((i.norm_sqr() - 1.0).abs() < 1e-15);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i*im`.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`Complex64`].
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// `e^{i theta}` — a unit-modulus complex number at angle `theta`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// Creates a complex number from polar form `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate `re - i*im`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared modulus `re^2 + im^2`. This is the probability weight of an
    /// amplitude, so it is the hottest scalar operation in the simulator.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `sqrt(re^2 + im^2)`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaN components when `self` is zero,
    /// matching IEEE division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// True when both components are within `eps` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Self, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the inverse
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex64::new(1.0, 2.0), c64(1.0, 2.0));
        assert_eq!(Complex64::from_real(3.0), c64(3.0, 0.0));
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
    }

    #[test]
    fn arithmetic_identities() {
        let a = c64(1.5, -2.5);
        let b = c64(-0.5, 4.0);
        assert!((a + b - b).approx_eq(a, EPS));
        assert!((a * b / b).approx_eq(a, EPS));
        assert!((a - a).approx_eq(Complex64::ZERO, EPS));
        assert!((-a + a).approx_eq(Complex64::ZERO, EPS));
    }

    #[test]
    fn multiplication_matches_textbook() {
        // (1+2i)(3+4i) = 3 + 4i + 6i + 8i^2 = -5 + 10i
        let p = c64(1.0, 2.0) * c64(3.0, 4.0);
        assert!(p.approx_eq(c64(-5.0, 10.0), EPS));
    }

    #[test]
    fn conj_and_norms() {
        let a = c64(3.0, -4.0);
        assert_eq!(a.conj(), c64(3.0, 4.0));
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
        assert!((a.norm() - 5.0).abs() < EPS);
        // z * conj(z) is |z|^2 (real)
        let zz = a * a.conj();
        assert!(zz.approx_eq(c64(25.0, 0.0), EPS));
    }

    #[test]
    fn polar_and_cis() {
        let z = Complex64::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex64::I, EPS));
        let w = Complex64::from_polar(2.0, std::f64::consts::PI);
        assert!(w.approx_eq(c64(-2.0, 0.0), EPS));
        assert!((c64(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn inverse_of_unit_is_conjugate() {
        let z = Complex64::cis(0.7);
        assert!(z.inv().approx_eq(z.conj(), EPS));
    }

    #[test]
    fn assign_ops() {
        let mut a = c64(1.0, 1.0);
        a += c64(2.0, -1.0);
        assert_eq!(a, c64(3.0, 0.0));
        a -= c64(1.0, 0.0);
        assert_eq!(a, c64(2.0, 0.0));
        a *= Complex64::I;
        assert!(a.approx_eq(c64(0.0, 2.0), EPS));
    }

    #[test]
    fn real_scaling_both_sides() {
        let a = c64(1.0, -2.0);
        assert_eq!(a * 2.0, c64(2.0, -4.0));
        assert_eq!(2.0 * a, c64(2.0, -4.0));
        assert_eq!(a.scale(0.5), c64(0.5, -1.0));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![c64(1.0, 0.0), c64(0.0, 1.0), c64(2.0, 2.0)];
        let s: Complex64 = v.into_iter().sum();
        assert_eq!(s, c64(3.0, 3.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1-2i");
    }

    #[test]
    fn nan_detection() {
        assert!(c64(f64::NAN, 0.0).is_nan());
        assert!(!c64(1.0, 2.0).is_nan());
        // division by zero produces NaN components
        assert!((c64(1.0, 0.0) / Complex64::ZERO).is_nan());
    }
}
