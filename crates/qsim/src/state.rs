//! Dense statevector representation and gate-application kernels.
//!
//! Qubit `0` is the **least significant bit** of the basis-state index
//! (little-endian, matching Qiskit's convention so that circuits built by
//! the Qutes compiler behave identically to the paper's substrate).
//!
//! ```
//! use qutes_sim::{gates, StateVector};
//!
//! // Prepare a Bell pair and check its marginals.
//! let mut sv = StateVector::new(2).unwrap();
//! sv.apply_single(&gates::h(), 0).unwrap();
//! sv.apply_controlled(&gates::x(), &[0], 1).unwrap();
//! assert!((sv.probability_one(0).unwrap() - 0.5).abs() < 1e-12);
//! assert!((sv.probability_one(1).unwrap() - 0.5).abs() < 1e-12);
//! ```

use crate::complex::{c64, Complex64};
use crate::error::{SimError, SimResult};
use crate::gates::{Matrix2, Matrix4, Matrix8};
use crate::parallel;
use qutes_supervisor::Interrupt;

/// Hard cap on dense simulation size: 2^28 amplitudes = 4 GiB of state.
pub const MAX_QUBITS: usize = 28;

/// Allocates a zeroed amplitude vector, pre-flighting the reservation
/// with `try_reserve_exact` so an allocator refusal surfaces as
/// [`SimError::AllocationFailed`] instead of an OOM abort.
fn alloc_amps(len: usize) -> SimResult<Vec<Complex64>> {
    let bytes = len.saturating_mul(std::mem::size_of::<Complex64>());
    // The failpoint models refusal of a *statevector-sized* allocation;
    // the trivial single-amplitude vector (the 0-qubit seed state every
    // handler starts from) is exempt so chaos injection cannot fault
    // infrastructure that allocates nothing of consequence.
    if len > 1 {
        qutes_supervisor::failpoint("sim.alloc")
            .map_err(|_| SimError::AllocationFailed { bytes })?;
    }
    let mut amps: Vec<Complex64> = Vec::new();
    amps.try_reserve_exact(len)
        .map_err(|_| SimError::AllocationFailed { bytes })?;
    amps.resize(len, Complex64::ZERO);
    Ok(amps)
}

/// A pure quantum state over `n` qubits stored as `2^n` complex amplitudes.
#[derive(Clone, Debug)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex64>,
    parallel: bool,
    /// Cooperative cancellation handle checked (amortised) inside the
    /// strided kernels. Unarmed by default: a single relaxed load.
    interrupt: Interrupt,
}

impl StateVector {
    /// Creates the all-zeros basis state `|0...0>` on `n` qubits.
    pub fn new(n: usize) -> SimResult<Self> {
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits(n));
        }
        let mut amps = alloc_amps(1usize << n)?;
        amps[0] = Complex64::ONE;
        Ok(StateVector {
            n,
            amps,
            parallel: true,
            interrupt: Interrupt::new(),
        })
    }

    /// Creates the computational basis state `|index>` on `n` qubits.
    pub fn from_basis_state(n: usize, index: usize) -> SimResult<Self> {
        let mut sv = Self::new(n)?;
        if index >= sv.amps.len() {
            return Err(SimError::InvalidState(format!(
                "basis index {index} out of range for {n} qubits"
            )));
        }
        sv.amps[0] = Complex64::ZERO;
        sv.amps[index] = Complex64::ONE;
        Ok(sv)
    }

    /// Builds a state from explicit amplitudes. The length must be a power
    /// of two and the vector must be normalised to within `1e-6`.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> SimResult<Self> {
        if amps.is_empty() || !amps.len().is_power_of_two() {
            return Err(SimError::InvalidState(format!(
                "amplitude count {} is not a power of two",
                amps.len()
            )));
        }
        let n = amps.len().trailing_zeros() as usize;
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits(n));
        }
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if (norm - 1.0).abs() > 1e-6 {
            return Err(SimError::InvalidState(format!(
                "state norm^2 is {norm}, expected 1"
            )));
        }
        Ok(StateVector {
            n,
            amps,
            parallel: true,
            interrupt: Interrupt::new(),
        })
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of amplitudes (`2^n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Always false: a statevector has at least one amplitude.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Read-only view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// The amplitude of basis state `index`.
    #[inline]
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amps[index]
    }

    /// Enables or disables multi-threaded kernels (used by the E7/E8
    /// ablation benchmarks; on by default, and only engaged for states
    /// above [`parallel::PAR_THRESHOLD`] amplitudes).
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Whether parallel kernels are enabled.
    pub fn parallel_enabled(&self) -> bool {
        self.parallel
    }

    /// Installs a shared [`Interrupt`] handle; the strided kernels then
    /// perform an amortised deadline/cancel check every
    /// [`parallel::CHECK_STRIDE`] amplitudes and return
    /// [`SimError::Interrupted`] once it trips.
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.interrupt = interrupt;
    }

    /// The interrupt handle driving kernel checkpoints.
    pub fn interrupt(&self) -> &Interrupt {
        &self.interrupt
    }

    fn check_qubit(&self, q: usize) -> SimResult<()> {
        if q >= self.n {
            Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.n,
            })
        } else {
            Ok(())
        }
    }

    fn check_distinct(qs: &[usize]) -> SimResult<()> {
        for (i, &a) in qs.iter().enumerate() {
            if qs[i + 1..].contains(&a) {
                return Err(SimError::DuplicateQubit(a));
            }
        }
        Ok(())
    }

    /// Applies a single-qubit unitary to `target`.
    pub fn apply_single(&mut self, m: &Matrix2, target: usize) -> SimResult<()> {
        self.apply_controlled(m, &[], target)
    }

    /// Applies a single-qubit unitary to `target`, conditioned on every
    /// qubit in `controls` being `|1>`. An empty control list is an
    /// unconditional application.
    pub fn apply_controlled(
        &mut self,
        m: &Matrix2,
        controls: &[usize],
        target: usize,
    ) -> SimResult<()> {
        self.check_qubit(target)?;
        for &c in controls {
            self.check_qubit(c)?;
        }
        let mut all = controls.to_vec();
        all.push(target);
        Self::check_distinct(&all)?;
        let t0 = qutes_obs::maybe_now();

        let mut ctrl_mask = 0usize;
        for &c in controls {
            ctrl_mask |= 1usize << c;
        }
        let t_bit = 1usize << target;
        let block = t_bit << 1;
        let half = t_bit;
        let [[m00, m01], [m10, m11]] = m.m;
        // Entirely real matrices (H, X, RY, and their fused products —
        // the bulk of Grover-style workloads) take a scalar fast path:
        // 6 flops per amplitude instead of 14, which matters because the
        // single-core sweep is compute-bound, not bandwidth-bound.
        let real = m00.im == 0.0 && m01.im == 0.0 && m10.im == 0.0 && m11.im == 0.0;
        let (r00, r01, r10, r11) = (m00.re, m01.re, m10.re, m11.re);
        // Hoist the control-mask arithmetic out of the inner loop: bits
        // *above* the target select whole blocks (tested once per block),
        // bits *below* the target are enumerated directly by inserting
        // them into a compact counter, so the hot loops never test a mask
        // per amplitude.
        let ctrl_hi_mask = ctrl_mask & !(block - 1);
        let ctrl_lo_mask = ctrl_mask & (half.wrapping_sub(1));
        let lo_ctrl_bits: Vec<usize> = (0..target)
            .map(|b| 1usize << b)
            .filter(|b| ctrl_lo_mask & b != 0)
            .collect();

        parallel::for_each_block_interruptible(
            &mut self.amps,
            block,
            self.parallel,
            &self.interrupt,
            |chunk, offset| {
                for (base, tile) in parallel::blocks_mut(chunk, block) {
                    // Blocks whose high index bits miss a control are
                    // untouched; skipping them wholesale is what makes
                    // many-control gates (Grover's MCX/MCZ diffusion
                    // core) cheap.
                    if (offset + base) & ctrl_hi_mask != ctrl_hi_mask {
                        continue;
                    }
                    let (zeros, ones) = tile.split_at_mut(half);
                    if ctrl_lo_mask == 0 {
                        // Fully strided pair sweep: both halves of the
                        // block stream sequentially through cache.
                        if real {
                            for (a, b) in zeros.iter_mut().zip(ones.iter_mut()) {
                                let x = *a;
                                let y = *b;
                                *a = c64(r00 * x.re + r01 * y.re, r00 * x.im + r01 * y.im);
                                *b = c64(r10 * x.re + r11 * y.re, r10 * x.im + r11 * y.im);
                            }
                        } else {
                            for (a, b) in zeros.iter_mut().zip(ones.iter_mut()) {
                                let x = *a;
                                let y = *b;
                                *a = m00 * x + m01 * y;
                                *b = m10 * x + m11 * y;
                            }
                        }
                    } else {
                        // Enumerate only the satisfying low indices: expand
                        // a dense counter by inserting a set bit at each
                        // low control position (ascending).
                        let pairs = half >> lo_ctrl_bits.len();
                        for t in 0..pairs {
                            let mut k = t;
                            for &cb in &lo_ctrl_bits {
                                k = (k & (cb - 1)) | ((k & !(cb - 1)) << 1) | cb;
                            }
                            let x = zeros[k];
                            let y = ones[k];
                            zeros[k] = m00 * x + m01 * y;
                            ones[k] = m10 * x + m11 * y;
                        }
                    }
                }
            },
        )
        .map_err(SimError::Interrupted)?;
        if let Some(t0) = t0 {
            let name = if controls.is_empty() {
                "kernel.1q"
            } else {
                "kernel.controlled"
            };
            qutes_obs::record_duration(name, t0.elapsed());
        }
        Ok(())
    }

    /// Swaps qubits `a` and `b` (the SWAP gate).
    pub fn apply_swap(&mut self, a: usize, b: usize) -> SimResult<()> {
        self.apply_controlled_swap(&[], a, b)
    }

    /// Controlled swap (Fredkin with arbitrarily many controls).
    pub fn apply_controlled_swap(
        &mut self,
        controls: &[usize],
        a: usize,
        b: usize,
    ) -> SimResult<()> {
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        for &c in controls {
            self.check_qubit(c)?;
        }
        let mut all = controls.to_vec();
        all.extend_from_slice(&[a, b]);
        Self::check_distinct(&all)?;
        let t0 = qutes_obs::maybe_now();

        let mut ctrl_mask = 0usize;
        for &c in controls {
            ctrl_mask |= 1usize << c;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let lo_bit = 1usize << lo;
        let hi_bit = 1usize << hi;
        // Pairs (i, j) with i having lo=1,hi=0 and j = i ^ lo_bit ^ hi_bit
        // both live in the aligned block of size 2^(hi+1).
        let block = hi_bit << 1;
        // Control bits above the block are tested once per block; the
        // rest (below hi, excluding lo/hi themselves) per swapped pair.
        let ctrl_hi_mask = ctrl_mask & !(block - 1);
        let ctrl_lo_mask = ctrl_mask & (block - 1);

        parallel::for_each_block_interruptible(
            &mut self.amps,
            block,
            self.parallel,
            &self.interrupt,
            |chunk, offset| {
                for (base, tile) in parallel::blocks_mut(chunk, block) {
                    if (offset + base) & ctrl_hi_mask != ctrl_hi_mask {
                        continue;
                    }
                    // Strided walk of the indices with lo = 1, hi = 0: the
                    // bit layout below `hi` is (mid | lo_bit | low).
                    let mut mid = 0;
                    while mid < hi_bit {
                        for low in 0..lo_bit {
                            let i = mid + lo_bit + low;
                            if ctrl_lo_mask == 0
                                || (offset + base + i) & ctrl_lo_mask == ctrl_lo_mask
                            {
                                let j = i - lo_bit + hi_bit;
                                tile.swap(i, j);
                            }
                        }
                        mid += lo_bit << 1;
                    }
                }
            },
        )
        .map_err(SimError::Interrupted)?;
        if let Some(t0) = t0 {
            let name = if controls.is_empty() {
                "kernel.swap"
            } else {
                "kernel.cswap"
            };
            qutes_obs::record_duration(name, t0.elapsed());
        }
        Ok(())
    }

    /// Applies an arbitrary two-qubit unitary given as a 4x4 row-major
    /// matrix over basis ordering `|q1 q0>` (q0 = least significant).
    /// Primarily used by tests and decomposition cross-checks; the
    /// optimizer's fused gates go through [`Self::apply_two_fused`].
    pub fn apply_two(&mut self, m: &[[Complex64; 4]; 4], q0: usize, q1: usize) -> SimResult<()> {
        self.apply4(m, q0, q1, "kernel.2q_matrix")
    }

    /// Applies a fused two-qubit unitary (a [`Matrix4`] built by the
    /// level-2 optimizer) over basis ordering `|q1 q0>`.
    pub fn apply_two_fused(&mut self, m: &Matrix4, q0: usize, q1: usize) -> SimResult<()> {
        self.apply4(&m.m, q0, q1, "kernel.2q_fused")
    }

    /// Shared cache-blocked 4x4 kernel: strided iteration over aligned
    /// blocks, no per-amplitude bit tests.
    fn apply4(
        &mut self,
        m: &[[Complex64; 4]; 4],
        q0: usize,
        q1: usize,
        timer: &'static str,
    ) -> SimResult<()> {
        self.check_qubit(q0)?;
        self.check_qubit(q1)?;
        Self::check_distinct(&[q0, q1])?;
        let t0 = qutes_obs::maybe_now();
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let (lo_bit, hi_bit) = if b0 < b1 { (b0, b1) } else { (b1, b0) };
        let block = hi_bit << 1;
        let m = *m;
        // Real fused products (H/X/RY runs around CX) use the scalar fast
        // path — the sweep is compute-bound on a single core.
        let real = m.iter().flatten().all(|e| e.im == 0.0);
        let mut mr = [[0.0f64; 4]; 4];
        for (rr, row) in mr.iter_mut().zip(m.iter()) {
            for (e, c) in rr.iter_mut().zip(row.iter()) {
                *e = c.re;
            }
        }

        parallel::for_each_block_interruptible(
            &mut self.amps,
            block,
            self.parallel,
            &self.interrupt,
            |chunk, _offset| {
                for (_base, tile) in parallel::blocks_mut(chunk, block) {
                    // Indices with both wire bits clear: (mid | low) with
                    // `mid` skipping the lo bit and `low` below it.
                    let mut mid = 0;
                    while mid < hi_bit {
                        for low in 0..lo_bit {
                            let i = mid + low;
                            let v = [tile[i], tile[i + b0], tile[i + b1], tile[i + b0 + b1]];
                            if real {
                                for (r, row) in mr.iter().enumerate() {
                                    let acc = c64(
                                        row[0] * v[0].re
                                            + row[1] * v[1].re
                                            + row[2] * v[2].re
                                            + row[3] * v[3].re,
                                        row[0] * v[0].im
                                            + row[1] * v[1].im
                                            + row[2] * v[2].im
                                            + row[3] * v[3].im,
                                    );
                                    let off = (r & 1) * b0 + ((r >> 1) & 1) * b1;
                                    tile[i + off] = acc;
                                }
                            } else {
                                for (r, row) in m.iter().enumerate() {
                                    let acc = row[0] * v[0]
                                        + row[1] * v[1]
                                        + row[2] * v[2]
                                        + row[3] * v[3];
                                    let off = (r & 1) * b0 + ((r >> 1) & 1) * b1;
                                    tile[i + off] = acc;
                                }
                            }
                        }
                        mid += lo_bit << 1;
                    }
                }
            },
        )
        .map_err(SimError::Interrupted)?;
        if let Some(t0) = t0 {
            qutes_obs::record_duration(timer, t0.elapsed());
        }
        Ok(())
    }

    /// Applies a fused three-qubit unitary (a [`Matrix8`] built by the
    /// level-2 optimizer) over basis ordering `|q2 q1 q0>` (q0 = least
    /// significant bit of the matrix index).
    pub fn apply_three(&mut self, m: &Matrix8, q0: usize, q1: usize, q2: usize) -> SimResult<()> {
        self.check_qubit(q0)?;
        self.check_qubit(q1)?;
        self.check_qubit(q2)?;
        Self::check_distinct(&[q0, q1, q2])?;
        let t0 = qutes_obs::maybe_now();
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let b2 = 1usize << q2;
        let mut sorted = [b0, b1, b2];
        sorted.sort_unstable();
        let [a_bit, b_bit, c_bit] = sorted;
        let block = c_bit << 1;
        // Gather offset of matrix row/column r relative to the base index.
        let mut offs = [0usize; 8];
        for (r, o) in offs.iter_mut().enumerate() {
            *o = (r & 1) * b0 + ((r >> 1) & 1) * b1 + ((r >> 2) & 1) * b2;
        }
        let m = m.clone();
        // Real fused products take the scalar fast path (half the flops;
        // the sweep is compute-bound on a single core).
        let real = m.m.iter().flatten().all(|e| e.im == 0.0);
        let mut mr = [[0.0f64; 8]; 8];
        for (rr, row) in mr.iter_mut().zip(m.m.iter()) {
            for (e, c) in rr.iter_mut().zip(row.iter()) {
                *e = c.re;
            }
        }

        parallel::for_each_block_interruptible(
            &mut self.amps,
            block,
            self.parallel,
            &self.interrupt,
            |chunk, _offset| {
                for (_base, tile) in parallel::blocks_mut(chunk, block) {
                    // Indices with all three wire bits clear, walked as
                    // three nested strided loops (no per-index tests).
                    let mut hi = 0;
                    while hi < c_bit {
                        let mut mid = 0;
                        while mid < b_bit {
                            for low in 0..a_bit {
                                let i = hi + mid + low;
                                let mut v = [Complex64::ZERO; 8];
                                for (x, &o) in v.iter_mut().zip(offs.iter()) {
                                    *x = tile[i + o];
                                }
                                if real {
                                    for (row, &o) in mr.iter().zip(offs.iter()) {
                                        let mut re = 0.0;
                                        let mut im = 0.0;
                                        for (coef, x) in row.iter().zip(v.iter()) {
                                            re += coef * x.re;
                                            im += coef * x.im;
                                        }
                                        tile[i + o] = c64(re, im);
                                    }
                                } else {
                                    for (row, &o) in m.m.iter().zip(offs.iter()) {
                                        let mut acc = Complex64::ZERO;
                                        for (coef, x) in row.iter().zip(v.iter()) {
                                            acc += *coef * *x;
                                        }
                                        tile[i + o] = acc;
                                    }
                                }
                            }
                            mid += a_bit << 1;
                        }
                        hi += b_bit << 1;
                    }
                }
            },
        )
        .map_err(SimError::Interrupted)?;
        if let Some(t0) = t0 {
            qutes_obs::record_duration("kernel.3q_fused", t0.elapsed());
        }
        Ok(())
    }

    /// Multiplies every amplitude whose basis index satisfies `pred` by -1.
    ///
    /// This is the *simulator-level phase oracle* used to cross-check the
    /// gate-level Grover oracles (DESIGN.md §6). `pred` receives the full
    /// basis index.
    pub fn apply_phase_flip_where<F>(&mut self, pred: F)
    where
        F: Fn(usize) -> bool + Sync,
    {
        let t0 = qutes_obs::maybe_now();
        parallel::for_each_block(&mut self.amps, 1, self.parallel, |chunk, offset| {
            for (i, a) in chunk.iter_mut().enumerate() {
                if pred(offset + i) {
                    *a = -*a;
                }
            }
        });
        if let Some(t0) = t0 {
            qutes_obs::record_duration("kernel.phase_oracle", t0.elapsed());
        }
    }

    /// Multiplies the whole state by `e^{i theta}` (unobservable global
    /// phase; kept for exactness of composed-circuit tests).
    pub fn apply_global_phase(&mut self, theta: f64) {
        let p = Complex64::cis(theta);
        for a in self.amps.iter_mut() {
            *a *= p;
        }
    }

    /// Squared norm of the state (should always be ~1).
    pub fn norm_sqr(&self) -> f64 {
        parallel::sum_reduce(&self.amps, self.parallel, |a, _| a.norm_sqr())
    }

    /// Rescales the state to unit norm. Returns an error if the norm is
    /// numerically zero (which indicates a logic error upstream, e.g.
    /// conditioning on an impossible measurement outcome).
    pub fn renormalize(&mut self) -> SimResult<()> {
        let n = self.norm_sqr();
        if n <= 1e-300 {
            return Err(SimError::InvalidState(
                "cannot renormalise a zero state".into(),
            ));
        }
        let s = 1.0 / n.sqrt();
        for a in self.amps.iter_mut() {
            *a = a.scale(s);
        }
        Ok(())
    }

    /// Probability that measuring `qubit` yields `1`.
    pub fn probability_one(&self, qubit: usize) -> SimResult<f64> {
        self.check_qubit(qubit)?;
        let bit = 1usize << qubit;
        Ok(parallel::sum_reduce(&self.amps, self.parallel, |a, i| {
            if i & bit != 0 {
                a.norm_sqr()
            } else {
                0.0
            }
        }))
    }

    /// Probability of observing `outcome` (bit `k` of `outcome` is the
    /// result for `qubits[k]`) when measuring `qubits` jointly.
    pub fn probability_of_outcome(&self, qubits: &[usize], outcome: usize) -> SimResult<f64> {
        for &q in qubits {
            self.check_qubit(q)?;
        }
        Self::check_distinct(qubits)?;
        Ok(parallel::sum_reduce(&self.amps, self.parallel, |a, i| {
            let mut obs = 0usize;
            for (k, &q) in qubits.iter().enumerate() {
                obs |= ((i >> q) & 1) << k;
            }
            if obs == outcome {
                a.norm_sqr()
            } else {
                0.0
            }
        }))
    }

    /// Full probability distribution over all `2^n` basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Marginal distribution over a subset of qubits, as a dense vector of
    /// length `2^qubits.len()` (bit `k` of the index = `qubits[k]`).
    pub fn marginal_probabilities(&self, qubits: &[usize]) -> SimResult<Vec<f64>> {
        for &q in qubits {
            self.check_qubit(q)?;
        }
        Self::check_distinct(qubits)?;
        let mut out = vec![0.0f64; 1usize << qubits.len()];
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > 0.0 {
                let mut obs = 0usize;
                for (k, &q) in qubits.iter().enumerate() {
                    obs |= ((i >> q) & 1) << k;
                }
                out[obs] += p;
            }
        }
        Ok(out)
    }

    /// `<self|other>`.
    pub fn inner_product(&self, other: &StateVector) -> SimResult<Complex64> {
        if self.n != other.n {
            return Err(SimError::InvalidState(format!(
                "inner product of {}-qubit and {}-qubit states",
                self.n, other.n
            )));
        }
        Ok(self
            .amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// Fidelity `|<self|other>|^2`.
    pub fn fidelity(&self, other: &StateVector) -> SimResult<f64> {
        Ok(self.inner_product(other)?.norm_sqr())
    }

    /// Expectation value of Pauli-Z on `qubit`: `P(0) - P(1)`.
    pub fn expectation_z(&self, qubit: usize) -> SimResult<f64> {
        let p1 = self.probability_one(qubit)?;
        Ok(1.0 - 2.0 * p1)
    }

    /// Tensor product `other ⊗ self`: `other`'s qubits become the high
    /// bits. Used to build composite test fixtures.
    pub fn tensor(&self, other: &StateVector) -> SimResult<StateVector> {
        let n = self.n + other.n;
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits(n));
        }
        let mut amps = alloc_amps(1usize << n)?;
        for (j, &b) in other.amps.iter().enumerate() {
            if b == Complex64::ZERO {
                continue;
            }
            for (i, &a) in self.amps.iter().enumerate() {
                amps[(j << self.n) | i] = a * b;
            }
        }
        Ok(StateVector {
            n,
            amps,
            parallel: self.parallel,
            interrupt: self.interrupt.clone(),
        })
    }

    /// Collapses the state so `qubit` reads `value`, renormalising.
    /// Returns the probability the outcome had before collapse.
    pub fn collapse_qubit(&mut self, qubit: usize, value: bool) -> SimResult<f64> {
        self.check_qubit(qubit)?;
        let bit = 1usize << qubit;
        let keep_one = value;
        let p = if keep_one {
            self.probability_one(qubit)?
        } else {
            1.0 - self.probability_one(qubit)?
        };
        if p <= 1e-12 {
            return Err(SimError::InvalidState(format!(
                "collapse of qubit {qubit} to {} has probability ~0",
                value as u8
            )));
        }
        let s = 1.0 / p.sqrt();
        parallel::for_each_block(&mut self.amps, 1, self.parallel, |chunk, offset| {
            for (i, a) in chunk.iter_mut().enumerate() {
                let has_one = (offset + i) & bit != 0;
                if has_one == keep_one {
                    *a = a.scale(s);
                } else {
                    *a = Complex64::ZERO;
                }
            }
        });
        Ok(p)
    }

    /// Resets `qubit` to `|0>` by measuring-and-flipping. Non-unitary.
    /// The supplied `p1` sampling decision is made by the caller (see
    /// `measure::measure_and_reset`); this method performs a deterministic
    /// reset assuming the qubit has already been collapsed.
    pub fn flip_if_one(&mut self, qubit: usize) -> SimResult<()> {
        // After collapse to |1>, applying X returns the qubit to |0>.
        self.apply_single(&crate::gates::x(), qubit)
    }

    /// Returns a formatted dump of non-negligible amplitudes, for debugging
    /// and for the CLI's `--dump-state` flag.
    pub fn dump(&self, threshold: f64) -> String {
        let mut out = String::new();
        for (i, a) in self.amps.iter().enumerate() {
            if a.norm_sqr() > threshold {
                out.push_str(&format!(
                    "|{:0width$b}> : {} (p={:.6})\n",
                    i,
                    a,
                    a.norm_sqr(),
                    width = self.n
                ));
            }
        }
        out
    }
}

/// Builds the uniform superposition `H^{⊗n}|0>` directly (a frequently
/// needed fixture; cheaper than applying `n` Hadamards).
pub fn uniform_superposition(n: usize) -> SimResult<StateVector> {
    if n > MAX_QUBITS {
        return Err(SimError::TooManyQubits(n));
    }
    let len = 1usize << n;
    let amp = c64(1.0 / (len as f64).sqrt(), 0.0);
    StateVector::from_amplitudes(vec![amp; len])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    const EPS: f64 = 1e-10;

    #[test]
    fn new_state_is_all_zeros() {
        let sv = StateVector::new(3).unwrap();
        assert_eq!(sv.num_qubits(), 3);
        assert_eq!(sv.len(), 8);
        assert!(sv.amplitude(0).approx_eq(Complex64::ONE, EPS));
        assert!((sv.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn too_many_qubits_rejected() {
        assert!(matches!(
            StateVector::new(MAX_QUBITS + 1),
            Err(SimError::TooManyQubits(_))
        ));
    }

    #[test]
    fn from_amplitudes_validates() {
        assert!(StateVector::from_amplitudes(vec![]).is_err());
        assert!(StateVector::from_amplitudes(vec![Complex64::ONE; 3]).is_err());
        assert!(StateVector::from_amplitudes(vec![Complex64::ONE; 2]).is_err()); // norm 2
        let ok = StateVector::from_amplitudes(vec![Complex64::ONE, Complex64::ZERO]);
        assert!(ok.is_ok());
    }

    #[test]
    fn x_flips_basis_state() {
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_single(&gates::x(), 0).unwrap();
        assert!(sv.amplitude(0b01).approx_eq(Complex64::ONE, EPS));
        sv.apply_single(&gates::x(), 1).unwrap();
        assert!(sv.amplitude(0b11).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn hadamard_makes_uniform() {
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        let a = 1.0 / 2f64.sqrt();
        assert!(sv.amplitude(0).approx_eq(c64(a, 0.0), EPS));
        assert!(sv.amplitude(1).approx_eq(c64(a, 0.0), EPS));
    }

    #[test]
    fn uniform_superposition_matches_hadamards() {
        let mut sv = StateVector::new(4).unwrap();
        for q in 0..4 {
            sv.apply_single(&gates::h(), q).unwrap();
        }
        let direct = uniform_superposition(4).unwrap();
        assert!((sv.fidelity(&direct).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn cnot_entangles_bell_pair() {
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        sv.apply_controlled(&gates::x(), &[0], 1).unwrap();
        let a = 1.0 / 2f64.sqrt();
        assert!(sv.amplitude(0b00).approx_eq(c64(a, 0.0), EPS));
        assert!(sv.amplitude(0b11).approx_eq(c64(a, 0.0), EPS));
        assert!(sv.amplitude(0b01).approx_eq(Complex64::ZERO, EPS));
        assert!(sv.amplitude(0b10).approx_eq(Complex64::ZERO, EPS));
    }

    #[test]
    fn toffoli_truth_table() {
        // CCX flips target only when both controls are 1.
        for c0 in 0..2usize {
            for c1 in 0..2usize {
                let idx = c0 | (c1 << 1);
                let mut sv = StateVector::from_basis_state(3, idx).unwrap();
                sv.apply_controlled(&gates::x(), &[0, 1], 2).unwrap();
                let expect = if c0 == 1 && c1 == 1 { idx | 0b100 } else { idx };
                assert!(
                    sv.amplitude(expect).approx_eq(Complex64::ONE, EPS),
                    "controls {c0}{c1}"
                );
            }
        }
    }

    #[test]
    fn control_equal_target_rejected() {
        let mut sv = StateVector::new(2).unwrap();
        assert!(matches!(
            sv.apply_controlled(&gates::x(), &[1], 1),
            Err(SimError::DuplicateQubit(1))
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut sv = StateVector::new(2).unwrap();
        assert!(sv.apply_single(&gates::x(), 2).is_err());
        assert!(sv.apply_swap(0, 5).is_err());
        assert!(sv.probability_one(9).is_err());
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut sv = StateVector::from_basis_state(3, 0b001).unwrap();
        sv.apply_swap(0, 2).unwrap();
        assert!(sv.amplitude(0b100).approx_eq(Complex64::ONE, EPS));
        // swap is its own inverse
        sv.apply_swap(0, 2).unwrap();
        assert!(sv.amplitude(0b001).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn swap_matches_three_cnots() {
        let mut a = StateVector::new(2).unwrap();
        a.apply_single(&gates::h(), 0).unwrap();
        a.apply_single(&gates::t(), 0).unwrap();
        let mut b = a.clone();
        a.apply_swap(0, 1).unwrap();
        b.apply_controlled(&gates::x(), &[0], 1).unwrap();
        b.apply_controlled(&gates::x(), &[1], 0).unwrap();
        b.apply_controlled(&gates::x(), &[0], 1).unwrap();
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn fredkin_swaps_only_when_control_set() {
        let mut sv = StateVector::from_basis_state(3, 0b010).unwrap();
        sv.apply_controlled_swap(&[0], 1, 2).unwrap(); // control qubit 0 is 0
        assert!(sv.amplitude(0b010).approx_eq(Complex64::ONE, EPS));
        let mut sv = StateVector::from_basis_state(3, 0b011).unwrap();
        sv.apply_controlled_swap(&[0], 1, 2).unwrap(); // control is 1
        assert!(sv.amplitude(0b101).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn phase_flip_oracle_flips_sign() {
        let mut sv = uniform_superposition(3).unwrap();
        sv.apply_phase_flip_where(|i| i == 0b101);
        let a = 1.0 / 8f64.sqrt();
        assert!(sv.amplitude(0b101).approx_eq(c64(-a, 0.0), EPS));
        assert!(sv.amplitude(0b100).approx_eq(c64(a, 0.0), EPS));
    }

    #[test]
    fn probability_and_expectation() {
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        assert!((sv.probability_one(0).unwrap() - 0.5).abs() < EPS);
        assert!((sv.probability_one(1).unwrap()).abs() < EPS);
        assert!(sv.expectation_z(0).unwrap().abs() < EPS);
        assert!((sv.expectation_z(1).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn marginal_probabilities_sum_to_one() {
        let mut sv = StateVector::new(3).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        sv.apply_controlled(&gates::x(), &[0], 2).unwrap();
        let m = sv.marginal_probabilities(&[0, 2]).unwrap();
        assert_eq!(m.len(), 4);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < EPS);
        // Perfect correlation: only 00 and 11 outcomes.
        assert!((m[0b00] - 0.5).abs() < EPS);
        assert!((m[0b11] - 0.5).abs() < EPS);
        assert!(m[0b01].abs() < EPS);
    }

    #[test]
    fn joint_outcome_probability() {
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        sv.apply_controlled(&gates::x(), &[0], 1).unwrap();
        let p = sv.probability_of_outcome(&[0, 1], 0b11).unwrap();
        assert!((p - 0.5).abs() < EPS);
        let p = sv.probability_of_outcome(&[0, 1], 0b01).unwrap();
        assert!(p.abs() < EPS);
    }

    #[test]
    fn collapse_renormalizes() {
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        sv.apply_controlled(&gates::x(), &[0], 1).unwrap();
        let p = sv.collapse_qubit(0, true).unwrap();
        assert!((p - 0.5).abs() < EPS);
        assert!(sv.amplitude(0b11).approx_eq(Complex64::ONE, EPS));
        assert!((sv.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn collapse_to_impossible_outcome_errors() {
        let mut sv = StateVector::new(1).unwrap();
        assert!(sv.collapse_qubit(0, true).is_err());
    }

    #[test]
    fn inner_product_orthogonal_states() {
        let a = StateVector::from_basis_state(2, 0).unwrap();
        let b = StateVector::from_basis_state(2, 3).unwrap();
        assert!(a.inner_product(&b).unwrap().norm() < EPS);
        assert!((a.inner_product(&a).unwrap().re - 1.0).abs() < EPS);
        let c = StateVector::new(3).unwrap();
        assert!(a.inner_product(&c).is_err());
    }

    #[test]
    fn tensor_product_layout() {
        // |1> ⊗ |0> with self=|0> (low bits), other=|1> (high bits)
        let lo = StateVector::from_basis_state(1, 0).unwrap();
        let hi = StateVector::from_basis_state(1, 1).unwrap();
        let t = lo.tensor(&hi).unwrap();
        assert_eq!(t.num_qubits(), 2);
        assert!(t.amplitude(0b10).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn apply_two_matches_cnot() {
        // CNOT control=q0 target=q1 as a 4x4 over |q1 q0>.
        let o = Complex64::ONE;
        let zz = Complex64::ZERO;
        let cnot = [
            [o, zz, zz, zz],
            [zz, zz, zz, o],
            [zz, zz, o, zz],
            [zz, o, zz, zz],
        ];
        let mut a = StateVector::new(2).unwrap();
        a.apply_single(&gates::h(), 0).unwrap();
        let mut b = a.clone();
        a.apply_two(&cnot, 0, 1).unwrap();
        b.apply_controlled(&gates::x(), &[0], 1).unwrap();
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn apply_two_fused_matches_apply_two() {
        let o = Complex64::ONE;
        let zz = Complex64::ZERO;
        let cnot = [
            [o, zz, zz, zz],
            [zz, zz, zz, o],
            [zz, zz, o, zz],
            [zz, o, zz, zz],
        ];
        for (q0, q1) in [(0usize, 1usize), (1, 0), (0, 3), (3, 1)] {
            let mut a = StateVector::new(4).unwrap();
            for q in 0..4 {
                a.apply_single(&gates::h(), q).unwrap();
                a.apply_single(&gates::t(), q).unwrap();
            }
            let mut b = a.clone();
            a.apply_two(&cnot, q0, q1).unwrap();
            b.apply_two_fused(&Matrix4::new(cnot), q0, q1).unwrap();
            assert!((a.fidelity(&b).unwrap() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn apply_three_identity_is_noop() {
        let mut sv = StateVector::new(5).unwrap();
        for q in 0..5 {
            sv.apply_single(&gates::h(), q).unwrap();
        }
        let before = sv.clone();
        sv.apply_three(&Matrix8::identity(), 4, 1, 2).unwrap();
        assert!((sv.fidelity(&before).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn apply_three_matches_gate_sequence() {
        // Build the 8x8 for CCX(c0=wire0, c1=wire1, t=wire2) and check it
        // against the native controlled kernel on scrambled wire orders.
        let mut ccx = Matrix8::identity();
        ccx.m[0b011][0b011] = Complex64::ZERO;
        ccx.m[0b111][0b111] = Complex64::ZERO;
        ccx.m[0b011][0b111] = Complex64::ONE;
        ccx.m[0b111][0b011] = Complex64::ONE;
        for (q0, q1, q2) in [(0usize, 1usize, 2usize), (2, 0, 4), (3, 2, 1)] {
            let mut a = StateVector::new(5).unwrap();
            for q in 0..5 {
                a.apply_single(&gates::h(), q).unwrap();
                a.apply_single(&gates::t(), q).unwrap();
            }
            let mut b = a.clone();
            a.apply_three(&ccx, q0, q1, q2).unwrap();
            b.apply_controlled(&gates::x(), &[q0, q1], q2).unwrap();
            assert!(
                (a.fidelity(&b).unwrap() - 1.0).abs() < EPS,
                "wires ({q0},{q1},{q2})"
            );
        }
    }

    #[test]
    fn many_controls_above_and_below_target() {
        // Exercises both the per-block high-mask skip and the low-bit
        // insertion enumeration against a brute-force reference.
        let n = 6;
        let controls = [0usize, 2, 5];
        let target = 3;
        let mut sv = StateVector::new(n).unwrap();
        for q in 0..n {
            sv.apply_single(&gates::h(), q).unwrap();
            sv.apply_single(&gates::t(), q).unwrap();
        }
        let reference = {
            let mut amps = sv.amplitudes().to_vec();
            let cm: usize = controls.iter().map(|&c| 1usize << c).sum();
            let tb = 1usize << target;
            let [[m00, m01], [m10, m11]] = gates::h().m;
            for i in 0..amps.len() {
                if i & tb == 0 && i & cm == cm {
                    let a = amps[i];
                    let b = amps[i | tb];
                    amps[i] = m00 * a + m01 * b;
                    amps[i | tb] = m10 * a + m11 * b;
                }
            }
            StateVector::from_amplitudes(amps).unwrap()
        };
        sv.apply_controlled(&gates::h(), &controls, target).unwrap();
        assert!((sv.fidelity(&reference).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn controlled_swap_with_interleaved_controls() {
        // Controls both below, between, and above the swapped pair.
        let n = 6;
        for idx in 0..(1usize << n) {
            let mut sv = StateVector::from_basis_state(n, idx).unwrap();
            sv.apply_controlled_swap(&[0, 3, 5], 1, 4).unwrap();
            let expect = if idx & 0b101001 == 0b101001 {
                let b1 = (idx >> 1) & 1;
                let b4 = (idx >> 4) & 1;
                (idx & !0b10010) | (b1 << 4) | (b4 << 1)
            } else {
                idx
            };
            assert!(
                sv.amplitude(expect).approx_eq(Complex64::ONE, EPS),
                "idx {idx:06b}"
            );
        }
    }

    #[test]
    fn global_phase_is_unobservable() {
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        let probs = sv.probabilities();
        sv.apply_global_phase(1.234);
        assert_eq!(sv.probabilities(), probs);
    }

    #[test]
    fn parallel_matches_serial_on_large_state() {
        let n = 15; // 32768 amplitudes > PAR_THRESHOLD
        let mut par = StateVector::new(n).unwrap();
        let mut ser = StateVector::new(n).unwrap();
        ser.set_parallel(false);
        for q in 0..n {
            par.apply_single(&gates::h(), q).unwrap();
            ser.apply_single(&gates::h(), q).unwrap();
        }
        for q in 0..n - 1 {
            par.apply_controlled(&gates::x(), &[q], q + 1).unwrap();
            ser.apply_controlled(&gates::x(), &[q], q + 1).unwrap();
        }
        par.apply_swap(0, n - 1).unwrap();
        ser.apply_swap(0, n - 1).unwrap();
        assert!((par.fidelity(&ser).unwrap() - 1.0).abs() < 1e-9);
        assert!((par.probability_one(3).unwrap() - ser.probability_one(3).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn cancelled_interrupt_stops_kernels() {
        let mut sv = StateVector::new(3).unwrap();
        let intr = Interrupt::new();
        sv.set_interrupt(intr.clone());
        sv.apply_single(&gates::h(), 0).unwrap(); // unarmed: runs fine
        intr.cancel();
        let err = sv.apply_single(&gates::h(), 1).unwrap_err();
        assert!(matches!(
            err,
            SimError::Interrupted(qutes_supervisor::StopReason::Cancelled)
        ));
        let err = sv.apply_controlled_swap(&[0], 1, 2).unwrap_err();
        assert!(matches!(err, SimError::Interrupted(_)));
    }

    #[test]
    fn expired_deadline_stops_large_kernel() {
        let mut sv = StateVector::new(15).unwrap();
        sv.set_interrupt(Interrupt::with_deadline(std::time::Duration::ZERO));
        let err = sv.apply_single(&gates::h(), 0).unwrap_err();
        assert!(matches!(err, SimError::Interrupted(_)));
    }

    #[test]
    fn armed_but_distant_deadline_is_transparent() {
        let mut sv = StateVector::new(10).unwrap();
        sv.set_interrupt(Interrupt::with_deadline(std::time::Duration::from_secs(
            600,
        )));
        sv.apply_single(&gates::h(), 0).unwrap();
        sv.apply_controlled(&gates::x(), &[0], 1).unwrap();
        assert!((sv.probability_one(1).unwrap() - 0.5).abs() < EPS);
    }

    #[test]
    fn tensor_propagates_interrupt() {
        let mut lo = StateVector::new(1).unwrap();
        let intr = Interrupt::new();
        lo.set_interrupt(intr.clone());
        let hi = StateVector::new(1).unwrap();
        let mut t = lo.tensor(&hi).unwrap();
        intr.cancel();
        assert!(t.apply_single(&gates::h(), 0).is_err());
    }

    #[test]
    fn dump_lists_support() {
        let mut sv = StateVector::new(2).unwrap();
        sv.apply_single(&gates::h(), 0).unwrap();
        let d = sv.dump(1e-9);
        assert!(d.contains("|00>"));
        assert!(d.contains("|01>"));
        assert!(!d.contains("|10>"));
    }
}
