//! Single-qubit gate matrices and the small matrix algebra used by the
//! simulator and by unit tests.
//!
//! The simulator applies arbitrary 2x2 unitaries to targets (optionally
//! under control masks), so every higher-level gate ultimately funnels into
//! a [`Matrix2`]. Standard matrices (Pauli, Hadamard, phase family,
//! rotations, and the general `U(theta, phi, lambda)`) are provided as
//! constructors.
//!
//! ```
//! use qutes_sim::gates::{self, Matrix2};
//!
//! // H is self-inverse: H·H = I.
//! let hh = gates::h().matmul(&gates::h());
//! assert!(hh.approx_eq(&Matrix2::IDENTITY, 1e-12));
//! assert!(gates::x().is_unitary(1e-12));
//! ```

use crate::complex::{c64, Complex64};
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_4};

/// A 2x2 complex matrix in row-major order: `[[a, b], [c, d]]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Matrix2 {
    /// Row-major entries `[[m00, m01], [m10, m11]]`.
    pub m: [[Complex64; 2]; 2],
}

impl Matrix2 {
    /// Builds a matrix from row-major entries.
    #[inline]
    pub const fn new(m00: Complex64, m01: Complex64, m10: Complex64, m11: Complex64) -> Self {
        Matrix2 {
            m: [[m00, m01], [m10, m11]],
        }
    }

    /// The 2x2 identity.
    pub const IDENTITY: Matrix2 = Matrix2::new(
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::ONE,
    );

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix2) -> Matrix2 {
        let a = &self.m;
        let b = &rhs.m;
        Matrix2::new(
            a[0][0] * b[0][0] + a[0][1] * b[1][0],
            a[0][0] * b[0][1] + a[0][1] * b[1][1],
            a[1][0] * b[0][0] + a[1][1] * b[1][0],
            a[1][0] * b[0][1] + a[1][1] * b[1][1],
        )
    }

    /// Conjugate transpose (the inverse, for a unitary).
    pub fn adjoint(&self) -> Matrix2 {
        Matrix2::new(
            self.m[0][0].conj(),
            self.m[1][0].conj(),
            self.m[0][1].conj(),
            self.m[1][1].conj(),
        )
    }

    /// True when `self * self^dagger` is the identity within `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        let p = self.matmul(&self.adjoint());
        p.approx_eq(&Matrix2::IDENTITY, eps)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Matrix2, eps: f64) -> bool {
        for r in 0..2 {
            for c in 0..2 {
                if !self.m[r][c].approx_eq(other.m[r][c], eps) {
                    return false;
                }
            }
        }
        true
    }

    /// Approximate equality up to a global phase factor.
    pub fn approx_eq_up_to_phase(&self, other: &Matrix2, eps: f64) -> bool {
        // Find the first entry of `other` with non-negligible modulus and
        // derive the phase relating the two matrices from it.
        for r in 0..2 {
            for c in 0..2 {
                if other.m[r][c].norm() > eps {
                    if self.m[r][c].norm() <= eps {
                        return false;
                    }
                    let phase = self.m[r][c] / other.m[r][c];
                    if (phase.norm() - 1.0).abs() > eps {
                        return false;
                    }
                    let scaled = Matrix2::new(
                        other.m[0][0] * phase,
                        other.m[0][1] * phase,
                        other.m[1][0] * phase,
                        other.m[1][1] * phase,
                    );
                    return self.approx_eq(&scaled, eps);
                }
            }
        }
        // `other` is (numerically) the zero matrix; matrices are equal up to
        // phase only if `self` is too.
        self.approx_eq(other, eps)
    }
}

/// Generates the fixed-size square complex matrix types used by the
/// fused multi-qubit kernels ([`Matrix4`], [`Matrix8`]). Basis ordering
/// follows the statevector convention: column/row bit `k` is the `k`-th
/// wire of the fused gate (bit 0 = least significant).
macro_rules! square_matrix {
    ($(#[$meta:meta])* $name:ident, $n:expr) => {
        $(#[$meta])*
        #[derive(Clone, PartialEq, Debug)]
        pub struct $name {
            /// Row-major entries.
            pub m: [[Complex64; $n]; $n],
        }

        impl $name {
            /// Builds a matrix from row-major entries.
            #[inline]
            pub const fn new(m: [[Complex64; $n]; $n]) -> Self {
                Self { m }
            }

            /// The identity matrix.
            pub fn identity() -> Self {
                let mut m = [[Complex64::ZERO; $n]; $n];
                for (i, row) in m.iter_mut().enumerate() {
                    row[i] = Complex64::ONE;
                }
                Self { m }
            }

            /// Matrix product `self * rhs`.
            pub fn matmul(&self, rhs: &Self) -> Self {
                let mut out = [[Complex64::ZERO; $n]; $n];
                for (r, out_row) in out.iter_mut().enumerate() {
                    for c in 0..$n {
                        let mut acc = Complex64::ZERO;
                        for k in 0..$n {
                            acc += self.m[r][k] * rhs.m[k][c];
                        }
                        out_row[c] = acc;
                    }
                }
                Self { m: out }
            }

            /// Conjugate transpose (the inverse, for a unitary).
            pub fn adjoint(&self) -> Self {
                let mut out = [[Complex64::ZERO; $n]; $n];
                for (r, out_row) in out.iter_mut().enumerate() {
                    for c in 0..$n {
                        out_row[c] = self.m[c][r].conj();
                    }
                }
                Self { m: out }
            }

            /// Entry-wise approximate equality.
            pub fn approx_eq(&self, other: &Self, eps: f64) -> bool {
                for r in 0..$n {
                    for c in 0..$n {
                        if !self.m[r][c].approx_eq(other.m[r][c], eps) {
                            return false;
                        }
                    }
                }
                true
            }

            /// True when `self * self^dagger` is the identity within `eps`.
            pub fn is_unitary(&self, eps: f64) -> bool {
                self.matmul(&self.adjoint()).approx_eq(&Self::identity(), eps)
            }
        }
    };
}

square_matrix!(
    /// A 4x4 complex matrix: a two-qubit unitary over basis `|q1 q0>`
    /// (wire 0 of the fused gate = bit 0 of the basis index). Consumed
    /// by [`crate::StateVector::apply_two_fused`].
    Matrix4,
    4
);

square_matrix!(
    /// An 8x8 complex matrix: a three-qubit unitary over basis
    /// `|q2 q1 q0>` (wire 0 of the fused gate = bit 0 of the basis
    /// index). Consumed by [`crate::StateVector::apply_three`].
    Matrix8,
    8
);

/// Pauli-X (NOT).
pub fn x() -> Matrix2 {
    Matrix2::new(
        Complex64::ZERO,
        Complex64::ONE,
        Complex64::ONE,
        Complex64::ZERO,
    )
}

/// Pauli-Y.
pub fn y() -> Matrix2 {
    Matrix2::new(
        Complex64::ZERO,
        -Complex64::I,
        Complex64::I,
        Complex64::ZERO,
    )
}

/// Pauli-Z.
pub fn z() -> Matrix2 {
    Matrix2::new(
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        -Complex64::ONE,
    )
}

/// Hadamard.
pub fn h() -> Matrix2 {
    let s = c64(FRAC_1_SQRT_2, 0.0);
    Matrix2::new(s, s, s, -s)
}

/// S = sqrt(Z), the pi/2 phase gate.
pub fn s() -> Matrix2 {
    phase(std::f64::consts::FRAC_PI_2)
}

/// S-dagger.
pub fn sdg() -> Matrix2 {
    phase(-std::f64::consts::FRAC_PI_2)
}

/// T = sqrt(S), the pi/4 phase gate.
pub fn t() -> Matrix2 {
    phase(FRAC_PI_4)
}

/// T-dagger.
pub fn tdg() -> Matrix2 {
    phase(-FRAC_PI_4)
}

/// sqrt(X).
pub fn sx() -> Matrix2 {
    let p = c64(0.5, 0.5);
    let q = c64(0.5, -0.5);
    Matrix2::new(p, q, q, p)
}

/// Phase gate `diag(1, e^{i lambda})`.
pub fn phase(lambda: f64) -> Matrix2 {
    Matrix2::new(
        Complex64::ONE,
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::cis(lambda),
    )
}

/// Rotation about X by `theta`.
pub fn rx(theta: f64) -> Matrix2 {
    let c = c64((theta / 2.0).cos(), 0.0);
    let s = c64(0.0, -(theta / 2.0).sin());
    Matrix2::new(c, s, s, c)
}

/// Rotation about Y by `theta`.
pub fn ry(theta: f64) -> Matrix2 {
    let c = c64((theta / 2.0).cos(), 0.0);
    let s = (theta / 2.0).sin();
    Matrix2::new(c, c64(-s, 0.0), c64(s, 0.0), c)
}

/// Rotation about Z by `theta` (symmetric-phase convention).
pub fn rz(theta: f64) -> Matrix2 {
    Matrix2::new(
        Complex64::cis(-theta / 2.0),
        Complex64::ZERO,
        Complex64::ZERO,
        Complex64::cis(theta / 2.0),
    )
}

/// The general single-qubit unitary
/// `U(theta, phi, lambda)` in the OpenQASM 3 convention.
pub fn u(theta: f64, phi: f64, lambda: f64) -> Matrix2 {
    let ct = (theta / 2.0).cos();
    let st = (theta / 2.0).sin();
    Matrix2::new(
        c64(ct, 0.0),
        -Complex64::cis(lambda) * st,
        Complex64::cis(phi) * st,
        Complex64::cis(phi + lambda) * ct,
    )
}

/// ZYZ decomposition of a 2x2 unitary: returns `(theta, phi, lambda,
/// alpha)` such that `m = e^{i alpha} * U(theta, phi, lambda)` exactly
/// (up to floating-point rounding), with `theta` in `[0, pi]`.
///
/// This is how fused [`Matrix2`] unitaries are re-expressed as named
/// gates for OpenQASM export: the `U` part carries the observable
/// action, `alpha` the global phase.
pub fn zyz_decompose(m: &Matrix2) -> (f64, f64, f64, f64) {
    const EPS: f64 = 1e-12;
    let m00 = m.m[0][0];
    let m01 = m.m[0][1];
    let m10 = m.m[1][0];
    let m11 = m.m[1][1];
    let theta = 2.0 * m10.norm().atan2(m00.norm());
    if m10.norm() <= EPS {
        // Diagonal: only phi + lambda is determined; put it all in lambda.
        let alpha = m00.arg();
        (theta, 0.0, m11.arg() - alpha, alpha)
    } else if m00.norm() <= EPS {
        // Antidiagonal: only phi - lambda is determined; set phi = 0.
        let alpha = m10.arg();
        (theta, 0.0, (-m01).arg() - alpha, alpha)
    } else {
        let alpha = m00.arg();
        (theta, m10.arg() - alpha, (-m01).arg() - alpha, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    #[test]
    fn paulis_are_unitary_and_involutive() {
        for g in [x(), y(), z(), h()] {
            assert!(g.is_unitary(EPS));
            assert!(g.matmul(&g).approx_eq(&Matrix2::IDENTITY, EPS));
        }
    }

    #[test]
    fn phase_family_relations() {
        // S^2 = Z, T^2 = S, S * Sdg = I
        assert!(s().matmul(&s()).approx_eq(&z(), EPS));
        assert!(t().matmul(&t()).approx_eq(&s(), EPS));
        assert!(s().matmul(&sdg()).approx_eq(&Matrix2::IDENTITY, EPS));
        assert!(t().matmul(&tdg()).approx_eq(&Matrix2::IDENTITY, EPS));
    }

    #[test]
    fn sx_squares_to_x() {
        assert!(sx().matmul(&sx()).approx_eq(&x(), EPS));
        assert!(sx().is_unitary(EPS));
    }

    #[test]
    fn hzh_equals_x() {
        let hzh = h().matmul(&z()).matmul(&h());
        assert!(hzh.approx_eq(&x(), EPS));
    }

    #[test]
    fn xyz_anticommutation_xy_equals_iz() {
        let xy = x().matmul(&y());
        let iz = Matrix2::new(
            Complex64::I,
            Complex64::ZERO,
            Complex64::ZERO,
            -Complex64::I,
        );
        assert!(xy.approx_eq(&iz, EPS));
    }

    #[test]
    fn rotations_are_unitary() {
        for theta in [0.0, 0.3, FRAC_PI_2, PI, 2.7] {
            assert!(rx(theta).is_unitary(EPS));
            assert!(ry(theta).is_unitary(EPS));
            assert!(rz(theta).is_unitary(EPS));
            assert!(u(theta, 0.4, 1.1).is_unitary(1e-9));
        }
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        assert!(rx(PI).approx_eq_up_to_phase(&x(), 1e-9));
        assert!(ry(PI).approx_eq_up_to_phase(&y(), 1e-9));
        assert!(rz(PI).approx_eq_up_to_phase(&z(), 1e-9));
    }

    #[test]
    fn u_gate_specialisations() {
        // U(0, 0, lambda) = Phase(lambda)
        assert!(u(0.0, 0.0, 0.9).approx_eq(&phase(0.9), 1e-9));
        // U(pi/2, 0, pi) = H
        assert!(u(FRAC_PI_2, 0.0, PI).approx_eq(&h(), 1e-9));
        // U(pi, 0, pi) = X
        assert!(u(PI, 0.0, PI).approx_eq(&x(), 1e-9));
    }

    #[test]
    fn adjoint_inverts_rotations() {
        let g = rx(0.77);
        assert!(g.matmul(&g.adjoint()).approx_eq(&Matrix2::IDENTITY, EPS));
        let g = u(0.3, 0.5, 0.7);
        assert!(g.adjoint().matmul(&g).approx_eq(&Matrix2::IDENTITY, 1e-9));
    }

    #[test]
    fn phase_gate_diag() {
        let p = phase(1.3);
        assert_eq!(p.m[0][1], Complex64::ZERO);
        assert_eq!(p.m[1][0], Complex64::ZERO);
        assert!(p.m[1][1].approx_eq(Complex64::cis(1.3), EPS));
    }

    #[test]
    fn up_to_phase_rejects_different_gates() {
        assert!(!x().approx_eq_up_to_phase(&z(), EPS));
        assert!(!h().approx_eq_up_to_phase(&x(), EPS));
    }

    fn zyz_roundtrips(m: &Matrix2) {
        let (theta, phi, lambda, alpha) = zyz_decompose(m);
        let rebuilt = u(theta, phi, lambda);
        let phased = Matrix2::new(
            rebuilt.m[0][0] * Complex64::cis(alpha),
            rebuilt.m[0][1] * Complex64::cis(alpha),
            rebuilt.m[1][0] * Complex64::cis(alpha),
            rebuilt.m[1][1] * Complex64::cis(alpha),
        );
        assert!(phased.approx_eq(m, 1e-9), "zyz failed for {m:?}");
        assert!((0.0..=PI + 1e-9).contains(&theta));
    }

    #[test]
    fn zyz_recovers_named_gates() {
        for m in [x(), y(), z(), h(), s(), sdg(), t(), tdg(), sx()] {
            zyz_roundtrips(&m);
        }
    }

    #[test]
    fn zyz_recovers_rotations_and_products() {
        for theta in [0.0, 1e-14, 0.3, FRAC_PI_2, PI, 2.7] {
            zyz_roundtrips(&rx(theta));
            zyz_roundtrips(&ry(theta));
            zyz_roundtrips(&rz(theta));
        }
        // Generic products (diagonal, antidiagonal, and dense cases).
        zyz_roundtrips(&rz(0.7).matmul(&phase(1.1)));
        zyz_roundtrips(&x().matmul(&phase(0.4)));
        zyz_roundtrips(&h().matmul(&rx(0.9)).matmul(&t()));
        zyz_roundtrips(&u(1.2, -0.8, 2.9).matmul(&u(0.4, 1.5, -2.2)));
    }
}
