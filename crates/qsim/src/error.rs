//! Error type for simulator operations.
//!
//! ```
//! use qutes_sim::{gates, StateVector};
//!
//! // Applying a gate past the register width is a structural error.
//! let mut sv = StateVector::new(1).unwrap();
//! let err = sv.apply_single(&gates::x(), 3).unwrap_err();
//! assert!(err.to_string().contains("out of range"));
//! ```

use qutes_supervisor::StopReason;
use std::fmt;

/// Errors produced by statevector operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A qubit index was `>=` the number of qubits in the state.
    QubitOutOfRange {
        /// The offending index.
        qubit: usize,
        /// The number of qubits in the state.
        num_qubits: usize,
    },
    /// The same qubit appeared twice in one operation (e.g. as both a
    /// control and the target).
    DuplicateQubit(usize),
    /// An amplitude vector had an invalid shape or norm.
    InvalidState(String),
    /// Too many qubits to simulate (amplitude vector would overflow memory).
    TooManyQubits(usize),
    /// The allocator refused the amplitude vector (pre-flighted with
    /// `try_reserve`, so refusal is this typed error, never an abort).
    AllocationFailed {
        /// Bytes the statevector would have needed.
        bytes: usize,
    },
    /// A cooperative checkpoint observed a tripped [`Interrupt`]
    /// (deadline or cancellation) mid-kernel.
    ///
    /// [`Interrupt`]: qutes_supervisor::Interrupt
    Interrupted(StopReason),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit index {qubit} out of range for {num_qubits}-qubit state"
                )
            }
            SimError::DuplicateQubit(q) => {
                write!(f, "qubit {q} used more than once in a single operation")
            }
            SimError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            SimError::TooManyQubits(n) => {
                write!(f, "cannot simulate {n} qubits on the selected backend")
            }
            SimError::AllocationFailed { bytes } => {
                write!(f, "cannot allocate {bytes} bytes for the statevector")
            }
            SimError::Interrupted(reason) => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias used across the simulator.
pub type SimResult<T> = Result<T, SimError>;
