//! Counter-derived child RNG streams for shot-parallel Monte-Carlo
//! replay.
//!
//! The per-shot execution paths in `qutes-qcirc` re-run a circuit once
//! per shot, and every shot draws from its **own** RNG stream derived
//! from `(base_seed, shot_index)` rather than streaming one generator
//! through all shots sequentially. That makes each shot a pure function
//! of its index, so a worker pool can execute shots in any order — or
//! on any number of threads — and produce a histogram bit-for-bit
//! identical to the serial run.
//!
//! The derivation is the SplitMix64 sequence recommended for seeding
//! xoshiro-family generators (Blackman & Vigna): child seed `i` is the
//! `i`-th output of a SplitMix64 stream whose state starts at
//! `base_seed`, i.e. `mix(base_seed + (i + 1) · GOLDEN_GAMMA)`. The
//! golden-ratio increment walks the full 2⁶⁴ state space, and the
//! avalanche finalizer decorrelates neighbouring counters, so
//! consecutive shots get well-separated streams.
//!
//! ```
//! use qutes_sim::rng_stream::{child_seed, shot_rng};
//! use rand::Rng;
//!
//! // Shot 7's stream depends only on (base, 7): derivation is stable.
//! assert_eq!(child_seed(42, 7), child_seed(42, 7));
//! assert_ne!(child_seed(42, 7), child_seed(42, 8));
//! let mut a = shot_rng(42, 7);
//! let mut b = shot_rng(42, 7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 state increment: `2⁶⁴ / φ`, odd, so repeated addition
/// visits every 64-bit state exactly once before repeating.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output (avalanche) finalizer: a bijective mixing of
/// one 64-bit state word into one output word.
#[inline]
#[must_use]
pub fn splitmix64_mix(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of the child stream for `shot_index` under `base_seed`: the
/// `shot_index`-th output of SplitMix64 started at `base_seed`,
/// computed in O(1) by jumping the counter directly.
#[inline]
#[must_use]
pub fn child_seed(base_seed: u64, shot_index: u64) -> u64 {
    splitmix64_mix(base_seed.wrapping_add(shot_index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)))
}

/// A fresh [`StdRng`] seeded for `shot_index`'s private stream. Every
/// call with the same arguments yields an identical generator, on any
/// thread, which is the whole determinism contract of the shot pool.
#[inline]
#[must_use]
pub fn shot_rng(base_seed: u64, shot_index: u64) -> StdRng {
    StdRng::seed_from_u64(child_seed(base_seed, shot_index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn child_seeds_are_distinct_across_counters_and_bases() {
        let mut seen = HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for shot in 0..256u64 {
                assert!(
                    seen.insert(child_seed(base, shot)),
                    "collision at ({base}, {shot})"
                );
            }
        }
    }

    #[test]
    fn jumped_counter_matches_sequential_splitmix() {
        // child_seed(base, i) must equal the i-th output of the
        // textbook stateful SplitMix64 loop.
        let base = 0xDEAD_BEEF_u64;
        let mut state = base;
        for i in 0..64u64 {
            state = state.wrapping_add(GOLDEN_GAMMA);
            assert_eq!(child_seed(base, i), splitmix64_mix(state));
        }
    }

    #[test]
    fn shot_rng_is_reproducible_and_stream_separated() {
        let mut a = shot_rng(9, 3);
        let mut b = shot_rng(9, 3);
        let mut c = shot_rng(9, 4);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn streams_look_unbiased_per_counter() {
        // Neighbouring counters must not correlate: the first coin of
        // each shot stream should be ~fair across 4096 shots.
        let heads = (0..4096u64)
            .filter(|&s| shot_rng(1234, s).random_bool(0.5))
            .count();
        assert!((1800..2300).contains(&heads), "biased: {heads}/4096");
    }
}
