//! Stabilizer (CHP) tableau simulator for Clifford-only circuits.
//!
//! Dense statevectors cost `O(2^n)` memory, capping simulation at
//! [`MAX_QUBITS`](crate::MAX_QUBITS) qubits. Circuits built purely from
//! Clifford gates (H, S, S†, X, Y, Z, CX, CY, CZ, SWAP) plus measurement
//! and reset admit an exponentially cheaper representation: the
//! Aaronson–Gottesman tableau ("Improved simulation of stabilizer
//! circuits", Phys. Rev. A 70, 052328), which tracks the state's
//! stabilizer group in `O(n²)` bits and applies gates in `O(n)` time.
//! That lifts the practical qubit ceiling from ~28 to
//! [`TABLEAU_MAX_QUBITS`] for Clifford programs such as Bell/GHZ
//! preparation, teleportation, and error-correction encodings.
//!
//! The tableau stores `2n` Pauli rows over the X/Z bit matrices — rows
//! `0..n` are destabilizers, rows `n..2n` stabilizers — plus one scratch
//! row for deterministic-measurement phase accumulation. Rows are
//! bit-packed into `u64` words so gates are word-parallel column
//! operations and `rowsum` phase arithmetic reduces to popcounts.
//!
//! ```
//! use qutes_sim::tableau::Tableau;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 100-qubit GHZ chain: far beyond any dense statevector.
//! let mut t = Tableau::new(100).unwrap();
//! t.h(0).unwrap();
//! for q in 0..99 {
//!     t.cx(q, q + 1).unwrap();
//! }
//! let mut rng = StdRng::seed_from_u64(7);
//! let a = t.measure(0, &mut rng).unwrap();
//! // Every later qubit is now determined by the first outcome.
//! for q in 1..100 {
//!     assert_eq!(t.measure(q, &mut rng).unwrap(), a);
//! }
//! ```

use crate::error::{SimError, SimResult};
use qutes_supervisor::Interrupt;
use rand::Rng;
use std::collections::HashMap;

/// Hard cap on tableau width. The tableau needs roughly `4n²/8` bytes
/// (two `2n×n` bit matrices); at 4096 qubits that is ~8 MiB, and gate
/// cost `O(n)` stays far below statevector kernels. Raising this is a
/// memory-budget question, not an algorithmic one.
pub const TABLEAU_MAX_QUBITS: usize = 4096;

const WORD_BITS: usize = 64;

/// Aaronson–Gottesman stabilizer tableau over `n` qubits.
///
/// Cloning is cheap (`O(n²/8)` bytes). The shot sampler clones **once**
/// per call — not once per shot — to run a symbolic measurement cascade
/// whose random signs are left free; see [`Tableau::sample`].
#[derive(Clone, Debug)]
pub struct Tableau {
    /// Qubit count.
    n: usize,
    /// Words per row: `ceil(n / 64)`.
    words: usize,
    /// X bit matrix, `(2n + 1) × words`, row-major. Row `2n` is scratch.
    x: Vec<u64>,
    /// Z bit matrix, same shape as `x`.
    z: Vec<u64>,
    /// Phase bit per row (`(-1)^r` sign of the Pauli).
    r: Vec<u8>,
    /// Cooperative-cancellation handle checked by the shot sampler.
    interrupt: Interrupt,
}

impl Tableau {
    /// Builds the `|0…0⟩` tableau: destabilizer `i` is `X_i`, stabilizer
    /// `i` is `Z_i`, all phases `+1`.
    pub fn new(num_qubits: usize) -> SimResult<Self> {
        if num_qubits > TABLEAU_MAX_QUBITS {
            return Err(SimError::TooManyQubits(num_qubits));
        }
        let words = num_qubits.div_ceil(WORD_BITS);
        let rows = 2 * num_qubits + 1;
        let cells = rows * words;
        let mut x = Vec::new();
        let mut z = Vec::new();
        x.try_reserve_exact(cells)
            .and_then(|()| z.try_reserve_exact(cells))
            .map_err(|_| SimError::AllocationFailed {
                bytes: 2 * cells * 8,
            })?;
        x.resize(cells, 0);
        z.resize(cells, 0);
        let mut t = Tableau {
            n: num_qubits,
            words,
            x,
            z,
            r: vec![0; rows],
            interrupt: Interrupt::new(),
        };
        for q in 0..num_qubits {
            t.set_x(q, q, true);
            t.set_z(num_qubits + q, q, true);
        }
        Ok(t)
    }

    /// Number of qubits tracked.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Approximate heap footprint in bytes (both bit matrices + phases).
    pub fn memory_bytes(&self) -> usize {
        2 * self.x.len() * 8 + self.r.len()
    }

    /// Bytes a `num_qubits`-wide tableau would need, without building it.
    pub fn required_bytes(num_qubits: usize) -> usize {
        let words = num_qubits.div_ceil(WORD_BITS);
        let rows = 2 * num_qubits + 1;
        2 * rows * words * 8 + rows
    }

    /// Installs the interrupt handle checked by [`Tableau::sample`]
    /// between shots.
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.interrupt = interrupt;
    }

    /// The interrupt handle driving sampling checkpoints.
    pub fn interrupt(&self) -> &Interrupt {
        &self.interrupt
    }

    /// True when `self` and `other` describe the same Clifford *action*.
    ///
    /// A fresh tableau run through a gate sequence does not just hold a
    /// state: because [`Tableau::new`] seeds destabilizer `i` with `X_i`
    /// and stabilizer `i` with `Z_i`, the rows after the run record the
    /// conjugation `U P U†` of every generator `P ∈ {X_0..X_{n-1},
    /// Z_0..Z_{n-1}}` — i.e. the full action of the Clifford unitary `U`
    /// on the Pauli group, signs included. Two Clifford circuits are
    /// therefore equal up to global phase **iff** replaying each from a
    /// fresh tableau yields identical X/Z bit matrices and phase bits
    /// over all `2n` rows. This is the symbolic entry point the static
    /// translation-validation pass (`qutes-analysis::verify`) uses: no
    /// amplitudes, `O(n²)` bits, exact.
    ///
    /// The comparison excludes the scratch row (row `2n`), which only
    /// holds transient `rowsum` state from deterministic measurements.
    pub fn action_eq(&self, other: &Tableau) -> bool {
        if self.n != other.n {
            return false;
        }
        let cells = 2 * self.n * self.words;
        self.x[..cells] == other.x[..cells]
            && self.z[..cells] == other.z[..cells]
            && self.r[..2 * self.n] == other.r[..2 * self.n]
    }

    /// True when this tableau still encodes the identity action: every
    /// destabilizer `i` is exactly `X_i`, every stabilizer `i` exactly
    /// `Z_i`, and all phases are `+1` — the state [`Tableau::new`]
    /// starts from. Replaying a circuit and asking `is_identity_action`
    /// is the `O(n²)` symbolic check that the circuit is the identity up
    /// to global phase.
    pub fn is_identity_action(&self) -> bool {
        match Tableau::new(self.n) {
            Ok(fresh) => self.action_eq(&fresh),
            Err(_) => false,
        }
    }

    #[inline]
    fn cell(&self, row: usize, qubit: usize) -> (usize, u64) {
        (
            row * self.words + qubit / WORD_BITS,
            1u64 << (qubit % WORD_BITS),
        )
    }

    #[inline]
    fn x_bit(&self, row: usize, qubit: usize) -> bool {
        let (idx, mask) = self.cell(row, qubit);
        self.x[idx] & mask != 0
    }

    #[inline]
    fn set_x(&mut self, row: usize, qubit: usize, v: bool) {
        let (idx, mask) = self.cell(row, qubit);
        if v {
            self.x[idx] |= mask;
        } else {
            self.x[idx] &= !mask;
        }
    }

    #[inline]
    fn set_z(&mut self, row: usize, qubit: usize, v: bool) {
        let (idx, mask) = self.cell(row, qubit);
        if v {
            self.z[idx] |= mask;
        } else {
            self.z[idx] &= !mask;
        }
    }

    fn check_qubit(&self, qubit: usize) -> SimResult<()> {
        if qubit >= self.n {
            return Err(SimError::QubitOutOfRange {
                qubit,
                num_qubits: self.n,
            });
        }
        Ok(())
    }

    /// Hadamard on `qubit`: swaps the X/Z columns, phase `r ^= x·z`.
    pub fn h(&mut self, qubit: usize) -> SimResult<()> {
        self.check_qubit(qubit)?;
        let (off, mask) = self.cell(0, qubit);
        let stride = self.words;
        for row in 0..2 * self.n {
            let idx = off + row * stride;
            let xb = self.x[idx] & mask;
            let zb = self.z[idx] & mask;
            if xb != 0 && zb != 0 {
                self.r[row] ^= 1;
            }
            self.x[idx] = (self.x[idx] & !mask) | zb;
            self.z[idx] = (self.z[idx] & !mask) | xb;
        }
        Ok(())
    }

    /// Phase gate S on `qubit`: `z ^= x`, phase `r ^= x·z`.
    pub fn s(&mut self, qubit: usize) -> SimResult<()> {
        self.check_qubit(qubit)?;
        let (off, mask) = self.cell(0, qubit);
        let stride = self.words;
        for row in 0..2 * self.n {
            let idx = off + row * stride;
            let xb = self.x[idx] & mask;
            if xb != 0 && self.z[idx] & mask != 0 {
                self.r[row] ^= 1;
            }
            self.z[idx] ^= xb;
        }
        Ok(())
    }

    /// Inverse phase gate S† (`S³`).
    pub fn sdg(&mut self, qubit: usize) -> SimResult<()> {
        self.s(qubit)?;
        self.s(qubit)?;
        self.s(qubit)
    }

    /// Pauli X on `qubit`: phase `r ^= z`.
    pub fn x(&mut self, qubit: usize) -> SimResult<()> {
        self.check_qubit(qubit)?;
        let (off, mask) = self.cell(0, qubit);
        let stride = self.words;
        for row in 0..2 * self.n {
            if self.z[off + row * stride] & mask != 0 {
                self.r[row] ^= 1;
            }
        }
        Ok(())
    }

    /// Pauli Y on `qubit`: phase `r ^= x ⊕ z`.
    pub fn y(&mut self, qubit: usize) -> SimResult<()> {
        self.check_qubit(qubit)?;
        let (off, mask) = self.cell(0, qubit);
        let stride = self.words;
        for row in 0..2 * self.n {
            let idx = off + row * stride;
            if (self.x[idx] ^ self.z[idx]) & mask != 0 {
                self.r[row] ^= 1;
            }
        }
        Ok(())
    }

    /// Pauli Z on `qubit`: phase `r ^= x`.
    pub fn z(&mut self, qubit: usize) -> SimResult<()> {
        self.check_qubit(qubit)?;
        let (off, mask) = self.cell(0, qubit);
        let stride = self.words;
        for row in 0..2 * self.n {
            if self.x[off + row * stride] & mask != 0 {
                self.r[row] ^= 1;
            }
        }
        Ok(())
    }

    /// CNOT with `control` and `target`:
    /// `r ^= x_c·z_t·(x_t ⊕ z_c ⊕ 1)`, `x_t ^= x_c`, `z_c ^= z_t`.
    pub fn cx(&mut self, control: usize, target: usize) -> SimResult<()> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(SimError::DuplicateQubit(control));
        }
        let (coff, cmask) = self.cell(0, control);
        let (toff, tmask) = self.cell(0, target);
        let stride = self.words;
        for row in 0..2 * self.n {
            let ci = coff + row * stride;
            let ti = toff + row * stride;
            let xc = self.x[ci] & cmask != 0;
            let zc = self.z[ci] & cmask != 0;
            let xt = self.x[ti] & tmask != 0;
            let zt = self.z[ti] & tmask != 0;
            if xc && zt && (xt == zc) {
                self.r[row] ^= 1;
            }
            if xc {
                self.x[ti] ^= tmask;
            }
            if zt {
                self.z[ci] ^= cmask;
            }
        }
        Ok(())
    }

    /// Controlled-Z, via `H(t)·CX(c,t)·H(t)`.
    pub fn cz(&mut self, control: usize, target: usize) -> SimResult<()> {
        self.h(target)?;
        self.cx(control, target)?;
        self.h(target)
    }

    /// Controlled-Y, via `S(t)·CX(c,t)·S†(t)` (applied right-to-left).
    pub fn cy(&mut self, control: usize, target: usize) -> SimResult<()> {
        self.sdg(target)?;
        self.cx(control, target)?;
        self.s(target)
    }

    /// SWAP, as three alternating CNOTs.
    pub fn swap(&mut self, a: usize, b: usize) -> SimResult<()> {
        self.cx(a, b)?;
        self.cx(b, a)?;
        self.cx(a, b)
    }

    /// Left-multiplies Pauli row `src` into row `dst` (`dst := src · dst`),
    /// accumulating the `i`-power phase word-parallel via popcounts.
    fn rowsum(&mut self, dst: usize, src: usize) {
        let d = dst * self.words;
        let s = src * self.words;
        // Phase exponent of i: starts at 2(r_dst + r_src), accumulates the
        // per-qubit g(x1,z1,x2,z2) contributions; the product of two
        // commuting-group rows always lands on 0 or 2 (sign ±1).
        let mut acc: i64 = 2 * (i64::from(self.r[dst]) + i64::from(self.r[src]));
        for w in 0..self.words {
            let x1 = self.x[s + w];
            let z1 = self.z[s + w];
            let x2 = self.x[d + w];
            let z2 = self.z[d + w];
            // g = +1 cases: Z·X(+i·Y→ +1), X·XZ, XZ·Z ; g = −1 mirrors.
            let pos = (!x1 & z1 & x2 & !z2) | (x1 & !z1 & x2 & z2) | (x1 & z1 & !x2 & z2);
            let neg = (!x1 & z1 & x2 & z2) | (x1 & !z1 & !x2 & z2) | (x1 & z1 & x2 & !z2);
            acc += i64::from(pos.count_ones()) - i64::from(neg.count_ones());
            self.x[d + w] = x1 ^ x2;
            self.z[d + w] = z1 ^ z2;
        }
        // For stabilizer and scratch rows the exponent is always 0 or 2
        // (sign ±1). Destabilizer rows can land on an odd exponent when
        // summed with an anticommuting stabilizer during measurement;
        // their phase bits are never read, so the truncation is harmless.
        self.r[dst] = u8::from(acc.rem_euclid(4) >= 2);
    }

    /// Copies row `src` over row `dst` (bits and phase).
    fn row_copy(&mut self, dst: usize, src: usize) {
        let d = dst * self.words;
        let s = src * self.words;
        for w in 0..self.words {
            self.x[d + w] = self.x[s + w];
            self.z[d + w] = self.z[s + w];
        }
        self.r[dst] = self.r[src];
    }

    /// Zeroes row `row`.
    fn row_clear(&mut self, row: usize) {
        let d = row * self.words;
        for w in 0..self.words {
            self.x[d + w] = 0;
            self.z[d + w] = 0;
        }
        self.r[row] = 0;
    }

    /// Index of a stabilizer row with an X bit on `qubit`, if any. Its
    /// presence means `Z_qubit` anticommutes with the stabilizer group,
    /// i.e. the measurement outcome is random.
    fn anticommuting_stabilizer(&self, qubit: usize) -> Option<usize> {
        (self.n..2 * self.n).find(|&row| self.x_bit(row, qubit))
    }

    /// Phase of the deterministic `Z_qubit` expectation, or `None` when
    /// the outcome is random. Uses the scratch row (index `2n`) for the
    /// destabilizer rowsum, so `&mut self`, but the state is unchanged.
    fn deterministic_outcome(&mut self, qubit: usize) -> Option<bool> {
        if self.anticommuting_stabilizer(qubit).is_some() {
            return None;
        }
        let scratch = 2 * self.n;
        self.row_clear(scratch);
        for i in 0..self.n {
            if self.x_bit(i, qubit) {
                self.rowsum(scratch, i + self.n);
            }
        }
        Some(self.r[scratch] == 1)
    }

    /// Measures `qubit` in the computational basis, collapsing the state.
    ///
    /// Random case (some stabilizer anticommutes with `Z_qubit`): every
    /// other row carrying an X bit on `qubit` is multiplied by that
    /// stabilizer, the stabilizer is demoted to a destabilizer, and
    /// `±Z_qubit` with a fair random sign takes its place. Deterministic
    /// case: the outcome phase is accumulated on the scratch row.
    pub fn measure<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> SimResult<bool> {
        self.check_qubit(qubit)?;
        if let Some(p) = self.anticommuting_stabilizer(qubit) {
            for row in 0..2 * self.n {
                if row != p && self.x_bit(row, qubit) {
                    self.rowsum(row, p);
                }
            }
            self.row_copy(p - self.n, p);
            self.row_clear(p);
            self.set_z(p, qubit, true);
            let outcome = rng.random_bool(0.5);
            self.r[p] = u8::from(outcome);
            Ok(outcome)
        } else {
            // Outcome already determined by the stabilizer group; the
            // state is untouched.
            #[allow(clippy::unwrap_used)] // just checked: no anticommuting row
            Ok(self.deterministic_outcome(qubit).unwrap())
        }
    }

    /// Measures `qubit` and flips it back to `|0⟩` if the outcome was 1.
    /// Mirrors the statevector `measure_and_reset` semantics; returns the
    /// pre-reset outcome.
    pub fn reset<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> SimResult<bool> {
        let outcome = self.measure(qubit, rng)?;
        if outcome {
            self.x(qubit)?;
        }
        Ok(outcome)
    }

    /// Probability of measuring `|1⟩` on `qubit`. Stabilizer states only
    /// ever yield 0, ½, or 1, and the value is exact. Non-mutating in
    /// effect (the scratch row is working storage).
    pub fn probability_one(&mut self, qubit: usize) -> SimResult<f64> {
        self.check_qubit(qubit)?;
        Ok(match self.deterministic_outcome(qubit) {
            None => 0.5,
            Some(true) => 1.0,
            Some(false) => 0.0,
        })
    }

    /// Appends `extra` fresh `|0⟩` qubits at the top indices, preserving
    /// the existing state — the tableau analogue of tensoring with
    /// `|0…0⟩`.
    pub fn grow(&mut self, extra: usize) -> SimResult<()> {
        if extra == 0 {
            return Ok(());
        }
        let new_n = self.n + extra;
        let mut grown = Tableau::new(new_n)?;
        grown.interrupt = self.interrupt.clone();
        // Old columns occupy the same bit positions, so rows copy
        // word-for-word; fresh qubits keep their identity rows from `new`.
        for i in 0..self.n {
            for w in 0..self.words {
                grown.x[i * grown.words + w] = self.x[i * self.words + w];
                grown.z[i * grown.words + w] = self.z[i * self.words + w];
                grown.x[(new_n + i) * grown.words + w] = self.x[(self.n + i) * self.words + w];
                grown.z[(new_n + i) * grown.words + w] = self.z[(self.n + i) * self.words + w];
            }
            grown.r[i] = self.r[i];
            grown.r[new_n + i] = self.r[self.n + i];
        }
        *self = grown;
        Ok(())
    }

    /// Draws `shots` joint samples of `qubits` without collapsing `self`.
    /// Bit `k` of each returned key is the outcome of `qubits[k]`,
    /// matching [`measure::sample_counts`](crate::measure::sample_counts).
    ///
    /// This is a **ranked-stabilizer** sampler: instead of cloning the
    /// tableau and measuring destructively once per shot, it clones once
    /// and replays the measurement cascade *symbolically*, leaving every
    /// random sign as a free GF(2) variable. The key invariant making
    /// this sound is that the structural part of a measurement (which
    /// stabilizer anticommutes, which rows get `rowsum`med, which row is
    /// demoted) depends only on the X/Z bit matrices — never on the
    /// phase bits — while `rowsum`'s sign update is affine in the phases
    /// (`r_dst ← r_dst ⊕ r_src ⊕ g(x,z)`). So after Gaussian-eliminating
    /// the cascade once, the outcome of measured qubit `k` is
    /// `c_k ⊕ ⟨mask_k, b⟩` for a constant bit `c_k`, a dependence mask
    /// over the `rank ≤ |qubits|` fresh random bits, and the per-shot
    /// coin vector `b`. Each shot then costs `rank` RNG draws plus one
    /// popcount-parity per measured qubit — O(rank + |qubits|) — instead
    /// of an O(n²) clone and O(n²) collapse per shot, and draws coins in
    /// exactly the same order as destructive measurement, so histograms
    /// are bit-for-bit identical to the clone-per-shot sampler.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        qubits: &[usize],
        shots: usize,
        rng: &mut R,
    ) -> SimResult<HashMap<usize, usize>> {
        for &q in qubits {
            self.check_qubit(q)?;
        }
        // Joint outcomes are histogram keys: more qubits than key bits
        // cannot be represented (the dense engine shares this ceiling —
        // it tops out far below 64 qubits anyway). This also bounds the
        // symbolic rank below 64, so a u64 dependence mask suffices.
        if qubits.len() >= usize::BITS as usize {
            return Err(SimError::InvalidState(format!(
                "cannot histogram {} qubits jointly (keys are {}-bit); \
                 measure collapsing registers instead",
                qubits.len(),
                usize::BITS
            )));
        }
        let outcomes = self.ranked_outcomes(qubits);
        let rank = outcomes.rank;
        let mut counts = HashMap::new();
        for _ in 0..shots {
            self.interrupt.check().map_err(SimError::Interrupted)?;
            let mut coins = 0u64;
            for b in 0..rank {
                // Same draw order as destructive measurement: coin `b`
                // is the b-th random measurement in `qubits` order.
                if rng.random_bool(0.5) {
                    coins |= 1u64 << b;
                }
            }
            let mut key = 0usize;
            for (k, &(c, mask)) in outcomes.forms.iter().enumerate() {
                let bit = u64::from(c) ^ (u64::from((mask & coins).count_ones()) & 1);
                key |= (bit as usize) << k;
            }
            *counts.entry(key).or_insert(0) += 1;
        }
        Ok(counts)
    }

    /// Runs the measurement cascade for `qubits` once, symbolically:
    /// returns each qubit's outcome as an affine form `(const, mask)`
    /// over the fresh random bits introduced by random measurements.
    fn ranked_outcomes(&self, qubits: &[usize]) -> RankedOutcomes {
        let mut t = self.clone();
        // Per-row dependence mask on the random bits drawn so far. Phase
        // updates are XORs, so masks compose by XOR alongside `rowsum`.
        let mut sym = vec![0u64; 2 * t.n + 1];
        let mut forms = Vec::with_capacity(qubits.len());
        let mut rank = 0u32;
        for &q in qubits {
            if let Some(p) = t.anticommuting_stabilizer(q) {
                for row in 0..2 * t.n {
                    if row != p && t.x_bit(row, q) {
                        t.rowsum(row, p);
                        sym[row] ^= sym[p];
                    }
                }
                t.row_copy(p - t.n, p);
                sym[p - t.n] = sym[p];
                t.row_clear(p);
                t.set_z(p, q, true);
                // Fresh ±Z stabilizer whose sign IS the new random bit.
                let mask = 1u64 << rank;
                sym[p] = mask;
                forms.push((0u8, mask));
                rank += 1;
            } else {
                let scratch = 2 * t.n;
                t.row_clear(scratch);
                sym[scratch] = 0;
                for i in 0..t.n {
                    if t.x_bit(i, q) {
                        t.rowsum(scratch, i + t.n);
                        sym[scratch] ^= sym[i + t.n];
                    }
                }
                forms.push((t.r[scratch], sym[scratch]));
            }
        }
        RankedOutcomes { forms, rank }
    }
}

/// Output of the symbolic measurement cascade: one affine form per
/// measured qubit over `rank` free random bits.
struct RankedOutcomes {
    /// `(constant, dependence mask)` per measured qubit, in input order.
    forms: Vec<(u8, u64)>,
    /// Number of random (coin-flip) measurements in the cascade.
    rank: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gates, StateVector};
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fresh_tableau_measures_all_zero() {
        let mut t = Tableau::new(5).unwrap();
        let mut r = rng();
        for q in 0..5 {
            assert!(!t.measure(q, &mut r).unwrap());
        }
    }

    #[test]
    fn x_flips_deterministically() {
        let mut t = Tableau::new(3).unwrap();
        t.x(1).unwrap();
        let mut r = rng();
        assert!(!t.measure(0, &mut r).unwrap());
        assert!(t.measure(1, &mut r).unwrap());
        assert!(!t.measure(2, &mut r).unwrap());
    }

    #[test]
    fn bell_pair_outcomes_are_correlated() {
        let mut r = rng();
        for seed in 0..32u64 {
            let mut t = Tableau::new(2).unwrap();
            t.h(0).unwrap();
            t.cx(0, 1).unwrap();
            let mut shot_rng = StdRng::seed_from_u64(seed);
            let a = t.measure(0, &mut shot_rng).unwrap();
            let b = t.measure(1, &mut shot_rng).unwrap();
            assert_eq!(a, b);
            let _ = r.next_u64();
        }
    }

    #[test]
    fn hzh_equals_x() {
        let mut t = Tableau::new(1).unwrap();
        t.h(0).unwrap();
        t.z(0).unwrap();
        t.h(0).unwrap();
        assert_eq!(t.probability_one(0).unwrap(), 1.0);
    }

    #[test]
    fn s_squared_equals_z_and_sdg_inverts() {
        // |+> with S·S applied is |->; H maps it to |1>.
        let mut t = Tableau::new(1).unwrap();
        t.h(0).unwrap();
        t.s(0).unwrap();
        t.s(0).unwrap();
        t.h(0).unwrap();
        assert_eq!(t.probability_one(0).unwrap(), 1.0);
        // S then S† is identity.
        let mut t = Tableau::new(1).unwrap();
        t.h(0).unwrap();
        t.s(0).unwrap();
        t.sdg(0).unwrap();
        t.h(0).unwrap();
        assert_eq!(t.probability_one(0).unwrap(), 0.0);
    }

    #[test]
    fn y_on_zero_gives_one() {
        let mut t = Tableau::new(1).unwrap();
        t.y(0).unwrap();
        assert_eq!(t.probability_one(0).unwrap(), 1.0);
    }

    #[test]
    fn swap_moves_excitation() {
        let mut t = Tableau::new(2).unwrap();
        t.x(0).unwrap();
        t.swap(0, 1).unwrap();
        assert_eq!(t.probability_one(0).unwrap(), 0.0);
        assert_eq!(t.probability_one(1).unwrap(), 1.0);
    }

    #[test]
    fn cz_and_cy_match_statevector_probabilities() {
        // |+>|+> then CZ then H(1) is the Bell-like circuit where qubit 1
        // marginal is 1/2; cross-check every marginal against the dense
        // engine on a few fixed circuits.
        for gate in ["cz", "cy"] {
            let mut t = Tableau::new(2).unwrap();
            let mut sv = StateVector::new(2).unwrap();
            t.h(0).unwrap();
            sv.apply_single(&gates::h(), 0).unwrap();
            t.x(1).unwrap();
            sv.apply_single(&gates::x(), 1).unwrap();
            match gate {
                "cz" => {
                    t.cz(0, 1).unwrap();
                    sv.apply_controlled(&gates::z(), &[0], 1).unwrap();
                }
                _ => {
                    t.cy(0, 1).unwrap();
                    sv.apply_controlled(&gates::y(), &[0], 1).unwrap();
                }
            }
            t.h(0).unwrap();
            sv.apply_single(&gates::h(), 0).unwrap();
            for q in 0..2 {
                let dense = sv.probability_one(q).unwrap();
                let tab = t.probability_one(q).unwrap();
                assert!(
                    (dense - tab).abs() < 1e-9,
                    "{gate}: qubit {q} dense={dense} tableau={tab}"
                );
            }
        }
    }

    #[test]
    fn ghz_hundred_qubits_is_fully_correlated() {
        let mut t = Tableau::new(100).unwrap();
        t.h(0).unwrap();
        for q in 0..99 {
            t.cx(q, q + 1).unwrap();
        }
        // Every qubit marginal is 1/2 before measurement…
        assert_eq!(t.probability_one(50).unwrap(), 0.5);
        // …and all outcomes agree within a shot.
        let mut r = rng();
        let first = t.measure(0, &mut r).unwrap();
        for q in 1..100 {
            assert_eq!(t.measure(q, &mut r).unwrap(), first);
        }
    }

    #[test]
    fn measurement_is_repeatable() {
        let mut t = Tableau::new(2).unwrap();
        t.h(0).unwrap();
        t.cx(0, 1).unwrap();
        let mut r = rng();
        let first = t.measure(0, &mut r).unwrap();
        for _ in 0..8 {
            assert_eq!(t.measure(0, &mut r).unwrap(), first);
        }
    }

    #[test]
    fn reset_forces_zero() {
        let mut t = Tableau::new(1).unwrap();
        let mut r = rng();
        t.h(0).unwrap();
        t.reset(0, &mut r).unwrap();
        assert_eq!(t.probability_one(0).unwrap(), 0.0);
    }

    #[test]
    fn grow_preserves_state_and_adds_zeros() {
        let mut t = Tableau::new(2).unwrap();
        t.h(0).unwrap();
        t.cx(0, 1).unwrap();
        t.x(1).unwrap();
        t.grow(3).unwrap();
        assert_eq!(t.num_qubits(), 5);
        // New qubits are |0>.
        for q in 2..5 {
            assert_eq!(t.probability_one(q).unwrap(), 0.0);
        }
        // Old entanglement survives: outcomes anti-correlated (X on 1).
        let mut r = rng();
        let a = t.measure(0, &mut r).unwrap();
        let b = t.measure(1, &mut r).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn sample_does_not_collapse_and_matches_support() {
        let mut t = Tableau::new(2).unwrap();
        t.h(0).unwrap();
        t.cx(0, 1).unwrap();
        let mut r = rng();
        let counts = t.sample(&[0, 1], 500, &mut r).unwrap();
        // Bell support is {00, 11}.
        assert!(counts.keys().all(|&k| k == 0b00 || k == 0b11));
        let zeros = *counts.get(&0b00).unwrap_or(&0);
        let ones = *counts.get(&0b11).unwrap_or(&0);
        assert_eq!(zeros + ones, 500);
        assert!(zeros > 150 && ones > 150, "{zeros} vs {ones}");
        // Sampling left the tableau un-collapsed.
        assert_eq!(t.probability_one(0).unwrap(), 0.5);
    }

    /// Clone-per-shot reference sampler (the pre-ranked implementation):
    /// the ranked sampler must reproduce its histograms bit-for-bit,
    /// including RNG stream consumption.
    fn reference_sample(
        t: &Tableau,
        qubits: &[usize],
        shots: usize,
        rng: &mut StdRng,
    ) -> HashMap<usize, usize> {
        let mut counts = HashMap::new();
        for _ in 0..shots {
            let mut c = t.clone();
            let mut key = 0usize;
            for (k, &q) in qubits.iter().enumerate() {
                if c.measure(q, rng).unwrap() {
                    key |= 1 << k;
                }
            }
            *counts.entry(key).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn ranked_sampler_matches_clone_per_shot_bit_for_bit() {
        for seed in 0..16u64 {
            let mut gen = StdRng::seed_from_u64(0x5A5A + seed);
            let n = 2 + (gen.next_u64() % 5) as usize;
            let mut t = Tableau::new(n).unwrap();
            for _ in 0..40 {
                let q = (gen.next_u64() % n as u64) as usize;
                match gen.next_u64() % 6 {
                    0 => t.h(q).unwrap(),
                    1 => t.s(q).unwrap(),
                    2 => t.x(q).unwrap(),
                    3 => t.z(q).unwrap(),
                    _ => {
                        let p = (q + 1) % n;
                        t.cx(q, p).unwrap();
                    }
                }
            }
            let all: Vec<usize> = (0..n).collect();
            let reference = reference_sample(&t, &all, 300, &mut StdRng::seed_from_u64(seed));
            let ranked = t
                .sample(&all, 300, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            assert_eq!(ranked, reference, "seed {seed} diverged");
        }
    }

    #[test]
    fn ranked_sampler_handles_wide_ghz_cheaply() {
        // 100-qubit GHZ: rank 1 over 100 measured qubits (key guard
        // limits joint histograms to < 64 qubits, so sample the ends
        // plus the middle). 100k shots must be a tight loop, not 100k
        // tableau clones.
        let mut t = Tableau::new(100).unwrap();
        t.h(0).unwrap();
        for q in 0..99 {
            t.cx(q, q + 1).unwrap();
        }
        let mut r = rng();
        let counts = t.sample(&[0, 50, 99], 100_000, &mut r).unwrap();
        let zeros = *counts.get(&0b000).unwrap_or(&0);
        let ones = *counts.get(&0b111).unwrap_or(&0);
        assert_eq!(zeros + ones, 100_000, "GHZ support is {{000, 111}}");
        assert!(zeros > 45_000 && ones > 45_000, "{zeros} vs {ones}");
    }

    #[test]
    fn out_of_range_and_duplicate_are_typed_errors() {
        let mut t = Tableau::new(2).unwrap();
        assert!(matches!(
            t.h(7),
            Err(SimError::QubitOutOfRange { qubit: 7, .. })
        ));
        assert!(matches!(t.cx(1, 1), Err(SimError::DuplicateQubit(1))));
        assert!(matches!(
            Tableau::new(TABLEAU_MAX_QUBITS + 1),
            Err(SimError::TooManyQubits(_))
        ));
    }

    #[test]
    fn interrupt_cancels_sampling() {
        use qutes_supervisor::StopReason;
        let mut t = Tableau::new(2).unwrap();
        t.h(0).unwrap();
        let intr = Interrupt::new();
        intr.cancel();
        t.set_interrupt(intr);
        let mut r = rng();
        let err = t.sample(&[0, 1], 10, &mut r).unwrap_err();
        assert_eq!(err, SimError::Interrupted(StopReason::Cancelled));
    }

    /// Random-Clifford equivalence: apply an identical random gate
    /// sequence to a tableau and a dense statevector, then require every
    /// single-qubit marginal to agree exactly (stabilizer marginals are
    /// 0, ½, or 1) and sampled joint outcomes to lie in the dense
    /// support.
    #[test]
    fn random_clifford_circuits_match_statevector() {
        for seed in 0..24u64 {
            let mut gen = StdRng::seed_from_u64(0x00C1_1FF0 + seed);
            let n = 2 + (gen.next_u64() % 4) as usize;
            let mut t = Tableau::new(n).unwrap();
            let mut sv = StateVector::new(n).unwrap();
            for _ in 0..30 {
                let q = (gen.next_u64() % n as u64) as usize;
                match gen.next_u64() % 9 {
                    0 => {
                        t.h(q).unwrap();
                        sv.apply_single(&gates::h(), q).unwrap();
                    }
                    1 => {
                        t.s(q).unwrap();
                        sv.apply_single(&gates::s(), q).unwrap();
                    }
                    2 => {
                        t.sdg(q).unwrap();
                        sv.apply_single(&gates::sdg(), q).unwrap();
                    }
                    3 => {
                        t.x(q).unwrap();
                        sv.apply_single(&gates::x(), q).unwrap();
                    }
                    4 => {
                        t.y(q).unwrap();
                        sv.apply_single(&gates::y(), q).unwrap();
                    }
                    5 => {
                        t.z(q).unwrap();
                        sv.apply_single(&gates::z(), q).unwrap();
                    }
                    _ => {
                        let mut p = (gen.next_u64() % n as u64) as usize;
                        if p == q {
                            p = (p + 1) % n;
                        }
                        match gen.next_u64() % 3 {
                            0 => {
                                t.cx(q, p).unwrap();
                                sv.apply_controlled(&gates::x(), &[q], p).unwrap();
                            }
                            1 => {
                                t.cz(q, p).unwrap();
                                sv.apply_controlled(&gates::z(), &[q], p).unwrap();
                            }
                            _ => {
                                t.swap(q, p).unwrap();
                                sv.apply_swap(q, p).unwrap();
                            }
                        }
                    }
                }
            }
            for q in 0..n {
                let dense = sv.probability_one(q).unwrap();
                let tab = t.probability_one(q).unwrap();
                assert!(
                    (dense - tab).abs() < 1e-9,
                    "seed {seed}: qubit {q} dense={dense} tableau={tab}"
                );
            }
            // Joint samples must land inside the dense support.
            let all: Vec<usize> = (0..n).collect();
            let mut r = StdRng::seed_from_u64(seed);
            let counts = t.sample(&all, 200, &mut r).unwrap();
            let marginal = sv.marginal_probabilities(&all).unwrap();
            for (&key, &c) in &counts {
                assert!(c > 0);
                assert!(
                    marginal[key] > 1e-9,
                    "seed {seed}: tableau sampled {key:#b} outside dense support"
                );
            }
        }
    }

    /// Mid-circuit measurement equivalence: measuring inside a random
    /// Clifford circuit must leave both engines with matching marginals
    /// when they observe the same outcomes. Drives the tableau's
    /// collapse path (rowsum + demotion) rather than only end-state
    /// sampling.
    #[test]
    fn mid_circuit_collapse_matches_statevector() {
        for seed in 0..16u64 {
            let mut gen = StdRng::seed_from_u64(0xBEEF + seed);
            let n = 3;
            let mut t = Tableau::new(n).unwrap();
            let mut sv = StateVector::new(n).unwrap();
            for step in 0..20 {
                let q = (gen.next_u64() % n as u64) as usize;
                match gen.next_u64() % 4 {
                    0 => {
                        t.h(q).unwrap();
                        sv.apply_single(&gates::h(), q).unwrap();
                    }
                    1 => {
                        let p = (q + 1) % n;
                        t.cx(q, p).unwrap();
                        sv.apply_controlled(&gates::x(), &[q], p).unwrap();
                    }
                    2 => {
                        t.s(q).unwrap();
                        sv.apply_single(&gates::s(), q).unwrap();
                    }
                    _ if step > 4 => {
                        // Measure on the tableau, then force the dense
                        // state onto the same branch.
                        let mut mr = StdRng::seed_from_u64(seed * 100 + step);
                        let outcome = t.measure(q, &mut mr).unwrap();
                        let p1 = sv.probability_one(q).unwrap();
                        let feasible = if outcome { p1 > 1e-9 } else { p1 < 1.0 - 1e-9 };
                        assert!(feasible, "tableau branch impossible in dense state");
                        sv.collapse_qubit(q, outcome).unwrap();
                    }
                    _ => {}
                }
            }
            for q in 0..n {
                let dense = sv.probability_one(q).unwrap();
                let tab = t.probability_one(q).unwrap();
                assert!(
                    (dense - tab).abs() < 1e-9,
                    "seed {seed}: qubit {q} dense={dense} tableau={tab}"
                );
            }
        }
    }

    #[test]
    fn action_eq_distinguishes_clifford_circuits() {
        // HZH = X: the two replays must agree row for row.
        let mut a = Tableau::new(2).unwrap();
        a.h(0).unwrap();
        a.z(0).unwrap();
        a.h(0).unwrap();
        let mut b = Tableau::new(2).unwrap();
        b.x(0).unwrap();
        assert!(a.action_eq(&b));

        // X vs Y differ only in conjugation signs — caught by the r bits.
        let mut x = Tableau::new(1).unwrap();
        x.x(0).unwrap();
        let mut y = Tableau::new(1).unwrap();
        y.y(0).unwrap();
        assert!(!x.action_eq(&y));

        // Width mismatch is never equal.
        assert!(!Tableau::new(1)
            .unwrap()
            .action_eq(&Tableau::new(2).unwrap()));
    }

    #[test]
    fn identity_action_after_inverse_pair() {
        let mut t = Tableau::new(3).unwrap();
        assert!(t.is_identity_action());
        t.h(0).unwrap();
        t.cx(0, 1).unwrap();
        assert!(!t.is_identity_action());
        t.cx(0, 1).unwrap();
        t.h(0).unwrap();
        assert!(t.is_identity_action());
    }

    #[test]
    fn action_eq_sees_phase_of_swapped_wires() {
        // SWAP(0,1) vs CX·CX·CX implement the same permutation.
        let mut s = Tableau::new(2).unwrap();
        s.swap(0, 1).unwrap();
        let mut c = Tableau::new(2).unwrap();
        c.cx(0, 1).unwrap();
        c.cx(1, 0).unwrap();
        c.cx(0, 1).unwrap();
        assert!(s.action_eq(&c));
    }
}
