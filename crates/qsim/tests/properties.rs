//! Property-based tests for the statevector simulator: the invariants here
//! (unitarity, norm preservation, involutions) must hold for *every* gate
//! sequence, so they are checked on randomly generated programs.

use proptest::prelude::*;
use qutes_sim::{gates, measure, Complex64, Matrix2, Matrix4, Matrix8, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A randomly chosen (gate, params) pair we can both apply and invert.
#[derive(Clone, Debug)]
enum Op {
    Single(u8, usize),        // gate id, target
    Rot(u8, f64, usize),      // axis, angle, target
    Controlled(usize, usize), // control, target (CX)
    Swap(usize, usize),
    TwoFused(u8, u8, usize, usize), // gate ids (bit 0, bit 1), q0, q1
    ThreeFused(u8, u8, u8, usize, usize, usize), // gate ids, q0, q1, q2
}

fn gate_for(id: u8) -> Matrix2 {
    match id % 7 {
        0 => gates::x(),
        1 => gates::y(),
        2 => gates::z(),
        3 => gates::h(),
        4 => gates::s(),
        5 => gates::t(),
        _ => gates::sx(),
    }
}

fn rot_for(axis: u8, theta: f64) -> Matrix2 {
    match axis % 3 {
        0 => gates::rx(theta),
        1 => gates::ry(theta),
        _ => gates::rz(theta),
    }
}

/// Kronecker product of two single-qubit gates over basis `|q1 q0>`:
/// `g0` acts on fused bit 0, `g1` on fused bit 1.
fn kron2(g1: &Matrix2, g0: &Matrix2) -> Matrix4 {
    let mut m = [[Complex64::ZERO; 4]; 4];
    for (r, row) in m.iter_mut().enumerate() {
        for (c, e) in row.iter_mut().enumerate() {
            *e = g1.m[r >> 1][c >> 1] * g0.m[r & 1][c & 1];
        }
    }
    Matrix4::new(m)
}

/// Kronecker product of three single-qubit gates over basis `|q2 q1 q0>`.
fn kron3(g2: &Matrix2, g1: &Matrix2, g0: &Matrix2) -> Matrix8 {
    let mut m = [[Complex64::ZERO; 8]; 8];
    for (r, row) in m.iter_mut().enumerate() {
        for (c, e) in row.iter_mut().enumerate() {
            *e = g2.m[r >> 2][c >> 2] * g1.m[r >> 1 & 1][c >> 1 & 1] * g0.m[r & 1][c & 1];
        }
    }
    Matrix8::new(m)
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0..n).prop_map(|(g, t)| Op::Single(g, t)),
        (any::<u8>(), -6.0..6.0f64, 0..n).prop_map(|(a, th, t)| Op::Rot(a, th, t)),
        (0..n, 0..n).prop_filter_map("distinct", |(c, t)| {
            (c != t).then_some(Op::Controlled(c, t))
        }),
        (0..n, 0..n).prop_filter_map("distinct", |(a, b)| (a != b).then_some(Op::Swap(a, b))),
        (any::<u8>(), any::<u8>(), 0..n, 0..n).prop_filter_map("distinct", |(g0, g1, a, b)| {
            (a != b).then_some(Op::TwoFused(g0, g1, a, b))
        }),
        (any::<u8>(), any::<u8>(), any::<u8>(), 0..n, 0..n, 0..n).prop_filter_map(
            "distinct",
            |(g0, g1, g2, a, b, c)| {
                (a != b && b != c && a != c).then_some(Op::ThreeFused(g0, g1, g2, a, b, c))
            }
        ),
    ]
}

fn apply(sv: &mut StateVector, op: &Op) {
    match op {
        Op::Single(g, t) => sv.apply_single(&gate_for(*g), *t).unwrap(),
        Op::Rot(a, th, t) => sv.apply_single(&rot_for(*a, *th), *t).unwrap(),
        Op::Controlled(c, t) => sv.apply_controlled(&gates::x(), &[*c], *t).unwrap(),
        Op::Swap(a, b) => sv.apply_swap(*a, *b).unwrap(),
        Op::TwoFused(g0, g1, a, b) => sv
            .apply_two_fused(&kron2(&gate_for(*g1), &gate_for(*g0)), *a, *b)
            .unwrap(),
        Op::ThreeFused(g0, g1, g2, a, b, c) => sv
            .apply_three(
                &kron3(&gate_for(*g2), &gate_for(*g1), &gate_for(*g0)),
                *a,
                *b,
                *c,
            )
            .unwrap(),
    }
}

fn apply_inverse(sv: &mut StateVector, op: &Op) {
    match op {
        Op::Single(g, t) => sv.apply_single(&gate_for(*g).adjoint(), *t).unwrap(),
        Op::Rot(a, th, t) => sv.apply_single(&rot_for(*a, -th), *t).unwrap(),
        Op::Controlled(c, t) => sv.apply_controlled(&gates::x(), &[*c], *t).unwrap(),
        Op::Swap(a, b) => sv.apply_swap(*a, *b).unwrap(),
        Op::TwoFused(g0, g1, a, b) => sv
            .apply_two_fused(&kron2(&gate_for(*g1), &gate_for(*g0)).adjoint(), *a, *b)
            .unwrap(),
        Op::ThreeFused(g0, g1, g2, a, b, c) => sv
            .apply_three(
                &kron3(&gate_for(*g2), &gate_for(*g1), &gate_for(*g0)).adjoint(),
                *a,
                *b,
                *c,
            )
            .unwrap(),
    }
}

proptest! {
    /// Any sequence of unitaries preserves the norm.
    #[test]
    fn norm_preserved(ops in prop::collection::vec(op_strategy(5), 0..60)) {
        let mut sv = StateVector::new(5).unwrap();
        for op in &ops {
            apply(&mut sv, op);
        }
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Applying a program then its reverse-inverse returns to |0..0>.
    #[test]
    fn program_then_inverse_is_identity(ops in prop::collection::vec(op_strategy(4), 0..40)) {
        let mut sv = StateVector::new(4).unwrap();
        for op in &ops {
            apply(&mut sv, op);
        }
        for op in ops.iter().rev() {
            apply_inverse(&mut sv, op);
        }
        prop_assert!(sv.amplitude(0).approx_eq(Complex64::ONE, 1e-7),
            "returned amplitude {:?}", sv.amplitude(0));
    }

    /// The phase-flip oracle is an involution.
    #[test]
    fn phase_oracle_involutive(marked in any::<u16>(), ops in prop::collection::vec(op_strategy(4), 0..20)) {
        let mut sv = StateVector::new(4).unwrap();
        for op in &ops {
            apply(&mut sv, op);
        }
        let reference = sv.clone();
        let mask = (marked as usize) & 0xF;
        sv.apply_phase_flip_where(|i| i & 0xF == mask);
        sv.apply_phase_flip_where(|i| i & 0xF == mask);
        prop_assert!((sv.fidelity(&reference).unwrap() - 1.0).abs() < 1e-9);
    }

    /// Probabilities from marginal distributions always sum to 1 and agree
    /// with per-qubit probabilities.
    #[test]
    fn marginals_consistent(ops in prop::collection::vec(op_strategy(4), 0..30), q in 0usize..4) {
        let mut sv = StateVector::new(4).unwrap();
        for op in &ops {
            apply(&mut sv, op);
        }
        let marg = sv.marginal_probabilities(&[q]).unwrap();
        prop_assert!((marg.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((marg[1] - sv.probability_one(q).unwrap()).abs() < 1e-9);
    }

    /// Measurement outcomes follow the pre-measurement distribution: the
    /// observed outcome always has nonzero prior probability, and the
    /// post-measurement state is consistent (re-measurement repeats).
    #[test]
    fn measurement_consistency(ops in prop::collection::vec(op_strategy(3), 0..25), seed in any::<u64>()) {
        let mut sv = StateVector::new(3).unwrap();
        for op in &ops {
            apply(&mut sv, op);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let before = sv.clone();
        let out = measure::measure_qubit(&mut sv, 1, &mut rng).unwrap();
        let prior = before.probability_one(1).unwrap();
        let prior_of_outcome = if out { prior } else { 1.0 - prior };
        prop_assert!(prior_of_outcome > 1e-12);
        // Re-measurement is deterministic after collapse.
        let again = measure::measure_qubit(&mut sv, 1, &mut rng).unwrap();
        prop_assert_eq!(out, again);
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Controlled application with an empty control list is exactly the
    /// unconditional application.
    #[test]
    fn empty_controls_equal_single(g in any::<u8>(), t in 0usize..4,
                                   ops in prop::collection::vec(op_strategy(4), 0..20)) {
        let mut a = StateVector::new(4).unwrap();
        for op in &ops {
            apply(&mut a, op);
        }
        let mut b = a.clone();
        a.apply_single(&gate_for(g), t).unwrap();
        b.apply_controlled(&gate_for(g), &[], t).unwrap();
        prop_assert!((a.fidelity(&b).unwrap() - 1.0).abs() < 1e-9);
    }

    /// Serial and parallel kernels agree bit-for-bit in distribution.
    #[test]
    fn parallel_serial_agree(ops in prop::collection::vec(op_strategy(14), 1..12)) {
        let mut par = StateVector::new(14).unwrap();
        let mut ser = StateVector::new(14).unwrap();
        ser.set_parallel(false);
        for op in &ops {
            apply(&mut par, op);
            apply(&mut ser, op);
        }
        prop_assert!((par.fidelity(&ser).unwrap() - 1.0).abs() < 1e-8);
    }

    /// Kernel results are *bit-identical* on either side of the parallel
    /// dispatch threshold (2^14 amplitudes): n = 13 stays serial, n = 14
    /// crosses it, n = 15 is comfortably above. The parallel paths
    /// partition the same blocked per-amplitude arithmetic, so every
    /// amplitude must match exactly — not just to tolerance.
    #[test]
    fn parallel_dispatch_is_bit_identical(
        n in 13usize..16,
        ops in prop::collection::vec(op_strategy(13), 1..10),
    ) {
        let mut par = StateVector::new(n).unwrap();
        let mut ser = StateVector::new(n).unwrap();
        par.set_parallel(true);
        ser.set_parallel(false);
        for op in &ops {
            apply(&mut par, op);
            apply(&mut ser, op);
        }
        for i in 0..1usize << n {
            let (a, b) = (par.amplitude(i), ser.amplitude(i));
            prop_assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "amplitude {i} differs: parallel {a:?} vs serial {b:?}"
            );
        }
    }
}
