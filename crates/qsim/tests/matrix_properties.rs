//! Property tests for the 2x2 matrix algebra and measurement statistics.

use proptest::prelude::*;
use qutes_sim::{gates, measure, Matrix2, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_unitary() -> impl Strategy<Value = Matrix2> {
    // U(theta, phi, lambda) sweeps all of SU(2) up to phase.
    (-3.2..3.2f64, -3.2..3.2f64, -3.2..3.2f64).prop_map(|(t, p, l)| gates::u(t, p, l))
}

proptest! {
    /// Every generated matrix is unitary.
    #[test]
    fn generated_matrices_are_unitary(m in random_unitary()) {
        prop_assert!(m.is_unitary(1e-9));
    }

    /// Products of unitaries are unitary.
    #[test]
    fn products_stay_unitary(a in random_unitary(), b in random_unitary()) {
        prop_assert!(a.matmul(&b).is_unitary(1e-9));
    }

    /// adjoint(a*b) == adjoint(b)*adjoint(a).
    #[test]
    fn adjoint_antihomomorphism(a in random_unitary(), b in random_unitary()) {
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    /// a * adjoint(a) == identity.
    #[test]
    fn adjoint_is_inverse(a in random_unitary()) {
        prop_assert!(a.matmul(&a.adjoint()).approx_eq(&Matrix2::IDENTITY, 1e-9));
    }

    /// Matrix multiplication is associative.
    #[test]
    fn matmul_associative(a in random_unitary(), b in random_unitary(), c in random_unitary()) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    /// Applying a random unitary preserves measurement statistics summing
    /// to one, and the sampled frequency of |1> converges to the exact
    /// probability.
    #[test]
    fn sampling_matches_probability(m in random_unitary(), seed in any::<u64>()) {
        let mut sv = StateVector::new(1).unwrap();
        sv.apply_single(&m, 0).unwrap();
        let p1 = sv.probability_one(0).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));

        let mut rng = StdRng::seed_from_u64(seed);
        let counts = measure::sample_counts(&sv, &[0], 2000, &mut rng).unwrap();
        let ones = counts.get(&1).copied().unwrap_or(0) as f64 / 2000.0;
        // 2000 samples: allow a generous 4-sigma band (sigma <= 0.0112).
        prop_assert!((ones - p1).abs() < 0.05, "p1={p1} sampled={ones}");
    }
}
