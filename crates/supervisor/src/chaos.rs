//! Feature-gated fault injection ("failpoints").
//!
//! Pipeline code calls [`failpoint`] at named sites unconditionally;
//! without the `chaos` cargo feature the call compiles to a no-op. With
//! the feature, tests arm a site with `arm`/`arm_once` (only compiled
//! under the feature, hence not linkable here) to inject a
//! panic, artificial slowness, or an allocation refusal, proving the
//! supervisor contains each fault as a typed error.
//!
//! The registry is process-global: chaos tests that arm overlapping
//! sites must serialise themselves (the facade suite uses a mutex).

use std::fmt;

/// The fault a site injects when hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the site (exercises the `contain` boundary).
    Panic,
    /// Sleep for the given number of milliseconds (exercises deadlines).
    Delay(u64),
    /// Report an allocation refusal: [`failpoint`] returns
    /// `Err(ChaosDenied)` and the site maps it to its typed
    /// out-of-memory error.
    DenyAlloc,
}

/// Marker error returned by a site armed with [`Fault::DenyAlloc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosDenied;

impl fmt::Display for ChaosDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allocation denied by chaos injection")
    }
}

impl std::error::Error for ChaosDenied {}

#[cfg(feature = "chaos")]
mod armed {
    use super::{ChaosDenied, Fault};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    struct ArmedFault {
        fault: Fault,
        /// `Some(n)`: trigger at most `n` more times; `None`: every hit.
        remaining: Option<u32>,
    }

    fn registry() -> &'static Mutex<HashMap<String, ArmedFault>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, ArmedFault>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arms `site` to inject `fault` on every hit until disarmed.
    pub fn arm(site: &str, fault: Fault) {
        if let Ok(mut reg) = registry().lock() {
            reg.insert(
                site.to_string(),
                ArmedFault {
                    fault,
                    remaining: None,
                },
            );
        }
    }

    /// Arms `site` to inject `fault` exactly once, then auto-disarm.
    pub fn arm_once(site: &str, fault: Fault) {
        if let Ok(mut reg) = registry().lock() {
            reg.insert(
                site.to_string(),
                ArmedFault {
                    fault,
                    remaining: Some(1),
                },
            );
        }
    }

    /// Disarms one site.
    pub fn disarm(site: &str) {
        if let Ok(mut reg) = registry().lock() {
            reg.remove(site);
        }
    }

    /// Disarms every site.
    pub fn reset() {
        if let Ok(mut reg) = registry().lock() {
            reg.clear();
        }
    }

    pub(super) fn hit(site: &str) -> Result<(), ChaosDenied> {
        let fault = {
            let Ok(mut reg) = registry().lock() else {
                return Ok(());
            };
            let Some(armed) = reg.get_mut(site) else {
                return Ok(());
            };
            let fault = armed.fault.clone();
            if let Some(n) = &mut armed.remaining {
                *n -= 1;
                if *n == 0 {
                    reg.remove(site);
                }
            }
            fault
        };
        qutes_obs::counter_add("chaos.injected", 1);
        match fault {
            // Deliberate: the whole point of this site is to prove the
            // facade's contain() boundary catches arbitrary panics.
            #[allow(clippy::panic)]
            Fault::Panic => panic!("chaos: injected panic at `{site}`"),
            Fault::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            Fault::DenyAlloc => Err(ChaosDenied),
        }
    }
}

#[cfg(feature = "chaos")]
pub use armed::{arm, arm_once, disarm, reset};

/// Hits the named fault site. No-op (and fully inlined away) unless the
/// `chaos` feature is enabled and a test armed this site.
#[cfg(feature = "chaos")]
pub fn failpoint(site: &str) -> Result<(), ChaosDenied> {
    armed::hit(site)
}

/// Hits the named fault site. No-op (and fully inlined away) unless the
/// `chaos` feature is enabled and a test armed this site.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub fn failpoint(_site: &str) -> Result<(), ChaosDenied> {
    Ok(())
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;

    #[test]
    fn arm_once_auto_disarms() {
        arm_once("test.site.once", Fault::DenyAlloc);
        assert_eq!(failpoint("test.site.once"), Err(ChaosDenied));
        assert_eq!(failpoint("test.site.once"), Ok(()));
    }

    #[test]
    fn unarmed_site_is_noop() {
        assert_eq!(failpoint("test.site.never-armed"), Ok(()));
    }

    #[test]
    fn panic_fault_is_containable() {
        arm_once("test.site.panic", Fault::Panic);
        let err = crate::contain(|| {
            let _ = failpoint("test.site.panic");
        })
        .unwrap_err();
        assert!(err.message.contains("test.site.panic"));
    }
}
