//! The shared interrupt handle: deadline + external cancel flag.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was stopped before completing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The configured wall-clock budget elapsed.
    DeadlineExceeded {
        /// The budget that was exceeded.
        budget: Duration,
    },
    /// [`Interrupt::cancel`] was called (e.g. Ctrl-C, or a server
    /// shedding load).
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::DeadlineExceeded { budget } => {
                write!(f, "deadline exceeded (time budget {budget:?})")
            }
            StopReason::Cancelled => write!(f, "run cancelled"),
        }
    }
}

impl std::error::Error for StopReason {}

/// Sentinel meaning "no deadline set".
const NO_DEADLINE: u64 = u64::MAX;

struct Inner {
    /// Fast-path flag: true iff a deadline or cancel is possible. An
    /// unarmed checkpoint is a single relaxed load.
    armed: AtomicBool,
    cancelled: AtomicBool,
    /// Deadline in nanoseconds relative to `epoch`; `NO_DEADLINE` if unset.
    deadline_ns: AtomicU64,
    /// Nanoseconds of budget originally granted (for error reporting).
    budget_ns: AtomicU64,
    epoch: Instant,
}

/// Shared handle for cooperative cancellation and wall-clock deadlines.
///
/// Cloning is cheap (an `Arc` bump); every clone observes the same
/// cancel flag and deadline, so a handle stored in a config can be
/// cancelled from another thread.
#[derive(Clone)]
pub struct Interrupt {
    inner: Arc<Inner>,
}

impl Default for Interrupt {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interrupt")
            .field("armed", &self.is_armed())
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .finish()
    }
}

/// Two handles are equal iff they share the same underlying state; a
/// structural comparison would race with the clock.
impl PartialEq for Interrupt {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Interrupt {
    /// A fresh, unarmed handle: checks always pass until a deadline is
    /// set or [`cancel`](Self::cancel) is called.
    pub fn new() -> Self {
        Interrupt {
            inner: Arc::new(Inner {
                armed: AtomicBool::new(false),
                cancelled: AtomicBool::new(false),
                deadline_ns: AtomicU64::new(NO_DEADLINE),
                budget_ns: AtomicU64::new(NO_DEADLINE),
                epoch: Instant::now(),
            }),
        }
    }

    /// A handle armed with a wall-clock budget starting now.
    pub fn with_deadline(budget: Duration) -> Self {
        let intr = Self::new();
        intr.set_deadline(budget);
        intr
    }

    /// Arms (or re-arms) the deadline `budget` from now.
    pub fn set_deadline(&self, budget: Duration) {
        let ns = u64::try_from(budget.as_nanos()).unwrap_or(NO_DEADLINE - 1);
        let elapsed = self.elapsed_ns();
        self.inner
            .deadline_ns
            .store(elapsed.saturating_add(ns), Ordering::Relaxed);
        self.inner.budget_ns.store(ns, Ordering::Relaxed);
        self.inner.armed.store(true, Ordering::Release);
    }

    /// Requests cancellation; every subsequent [`check`](Self::check)
    /// fails with [`StopReason::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
        self.inner.armed.store(true, Ordering::Release);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// True iff a deadline or cancellation can ever trip this handle.
    /// Kernels use this to keep the legacy uninstrumented path when the
    /// supervisor is not in play.
    pub fn is_armed(&self) -> bool {
        self.inner.armed.load(Ordering::Acquire)
    }

    fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Cooperative checkpoint: `Ok(())` to keep going, `Err` with the
    /// stop reason once cancelled or past the deadline.
    pub fn check(&self) -> Result<(), StopReason> {
        if !self.is_armed() {
            return Ok(());
        }
        if self.inner.cancelled.load(Ordering::Relaxed) {
            qutes_obs::counter_add("supervisor.cancelled", 1);
            return Err(StopReason::Cancelled);
        }
        let deadline = self.inner.deadline_ns.load(Ordering::Relaxed);
        if deadline != NO_DEADLINE && self.elapsed_ns() >= deadline {
            qutes_obs::counter_add("supervisor.deadline_trips", 1);
            let budget_ns = self.inner.budget_ns.load(Ordering::Relaxed);
            return Err(StopReason::DeadlineExceeded {
                budget: Duration::from_nanos(if budget_ns == NO_DEADLINE {
                    0
                } else {
                    budget_ns
                }),
            });
        }
        Ok(())
    }

    /// Amortised checkpoint for hot loops: bumps `*counter` and only
    /// consults the clock every `stride` calls. With an unarmed handle
    /// the whole call is one relaxed load plus an increment.
    #[inline]
    pub fn checkpoint(&self, counter: &mut u64, stride: u64) -> Result<(), StopReason> {
        *counter += 1;
        if !counter.is_multiple_of(stride) || !self.is_armed() {
            return Ok(());
        }
        self.check()
    }

    /// Like [`checkpoint`](Self::checkpoint), additionally bumping the
    /// named obs counter (e.g. `stage.shots.checkpoints`) each time the
    /// clock is actually consulted.
    #[inline]
    pub fn checkpoint_named(
        &self,
        counter: &mut u64,
        stride: u64,
        obs_counter: &'static str,
    ) -> Result<(), StopReason> {
        *counter += 1;
        if !counter.is_multiple_of(stride) || !self.is_armed() {
            return Ok(());
        }
        qutes_obs::counter_add(obs_counter, 1);
        self.check()
    }

    /// Remaining budget, if a deadline is armed. `None` when no
    /// deadline is set; `Some(ZERO)` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        let deadline = self.inner.deadline_ns.load(Ordering::Relaxed);
        if deadline == NO_DEADLINE {
            return None;
        }
        Some(Duration::from_nanos(
            deadline.saturating_sub(self.elapsed_ns()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_always_passes() {
        let intr = Interrupt::new();
        assert!(!intr.is_armed());
        assert_eq!(intr.check(), Ok(()));
        assert_eq!(intr.remaining(), None);
    }

    #[test]
    fn cancel_trips_all_clones() {
        let intr = Interrupt::new();
        let clone = intr.clone();
        clone.cancel();
        assert_eq!(intr.check(), Err(StopReason::Cancelled));
        assert!(intr.is_cancelled());
        assert_eq!(intr, clone);
    }

    #[test]
    fn deadline_trips_after_budget() {
        let intr = Interrupt::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        match intr.check() {
            Err(StopReason::DeadlineExceeded { budget }) => {
                assert_eq!(budget, Duration::from_millis(1));
            }
            other => unreachable!("expected deadline trip, got {other:?}"),
        }
    }

    #[test]
    fn zero_budget_trips_immediately() {
        let intr = Interrupt::with_deadline(Duration::ZERO);
        assert!(intr.check().is_err());
        assert_eq!(intr.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn checkpoint_amortises_clock_reads() {
        let intr = Interrupt::with_deadline(Duration::ZERO);
        let mut counter = 0u64;
        // Strided: first 9 calls skip the clock entirely.
        for _ in 0..9 {
            assert_eq!(intr.checkpoint(&mut counter, 10), Ok(()));
        }
        assert!(intr.checkpoint(&mut counter, 10).is_err());
    }

    #[test]
    fn cancel_from_another_thread() {
        let intr = Interrupt::new();
        let remote = intr.clone();
        let h = std::thread::spawn(move || remote.cancel());
        h.join().map_err(|_| "worker panicked").unwrap();
        assert_eq!(intr.check(), Err(StopReason::Cancelled));
    }
}
