//! Panic containment: the `catch_unwind` boundary for the library API.

use crate::stage::current_stage;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// A panic caught at the facade boundary, reduced to typed data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainedPanic {
    /// Innermost pipeline stage active when the panic fired.
    pub stage: &'static str,
    /// The panic payload, if it was a string (the common case).
    pub message: String,
}

impl fmt::Display for ContainedPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "internal error in stage `{}`: {}",
            self.stage, self.message
        )
    }
}

impl std::error::Error for ContainedPanic {}

thread_local! {
    static SUPPRESS_HOOK: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent while a
/// [`contain`] call is active on the panicking thread and otherwise
/// defers to the previous hook. A once-installed filtering hook is
/// thread-safe where a swap-around-the-call would race with concurrent
/// `contain` calls on other threads.
fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_HOOK.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

struct SuppressGuard {
    prev: bool,
}

impl SuppressGuard {
    fn engage() -> Self {
        let prev = SUPPRESS_HOOK.with(|s| s.replace(true));
        SuppressGuard { prev }
    }
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        SUPPRESS_HOOK.with(|s| s.set(prev));
    }
}

/// Runs `f`, converting any panic into a [`ContainedPanic`] that names
/// the deepest active stage (see [`crate::enter_stage`]). Bumps the
/// `supervisor.panics_contained` obs counter on capture and resets the
/// thread's stage stack so later work starts clean.
///
/// The closure is wrapped in `AssertUnwindSafe`: callers hand in
/// pipeline entry points whose partial state is discarded on the error
/// path, so a broken invariant cannot be observed afterwards.
pub fn contain<T>(f: impl FnOnce() -> T) -> Result<T, ContainedPanic> {
    install_quiet_hook();
    let result = {
        let _quiet = SuppressGuard::engage();
        catch_unwind(AssertUnwindSafe(f))
    };
    result.map_err(|payload| {
        let message = payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let stage = current_stage();
        crate::stage::reset_stages();
        qutes_obs::counter_add("supervisor.panics_contained", 1);
        ContainedPanic { stage, message }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::enter_stage;

    #[test]
    fn passes_values_through() {
        assert_eq!(contain(|| 41 + 1), Ok(42));
    }

    #[test]
    fn captures_stage_and_message() {
        let err = contain(|| {
            let _g = enter_stage("optimize");
            #[allow(clippy::panic)]
            {
                panic!("pass exploded");
            }
        })
        .unwrap_err();
        assert_eq!(err.stage, "optimize");
        assert_eq!(err.message, "pass exploded");
        // The stage stack was reset for subsequent work.
        assert_eq!(current_stage(), "unknown");
    }

    #[test]
    fn captures_string_payloads() {
        let err = contain(|| {
            #[allow(clippy::panic)]
            {
                panic!("with {} interpolation", 1);
            }
        })
        .unwrap_err();
        assert_eq!(err.stage, "unknown");
        assert_eq!(err.message, "with 1 interpolation");
    }

    #[test]
    fn nested_contain_restores_suppression() {
        let outer = contain(|| {
            let inner = contain(|| -> i32 {
                #[allow(clippy::panic)]
                {
                    panic!("inner");
                }
            });
            assert!(inner.is_err());
            7
        });
        assert_eq!(outer, Ok(7));
    }
}
