//! # qutes-supervisor
//!
//! The resilience substrate for the qutes pipeline: every entry point
//! (`run_source`, the CLI, the QASM importer) is made *bounded*,
//! *interruptible*, and *crash-contained* with the three primitives in
//! this crate.
//!
//! * [`Interrupt`] — a cheap shared handle combining a wall-clock
//!   deadline and an external cancel flag. Long loops call
//!   [`Interrupt::check`] (or the amortised [`Interrupt::checkpoint`])
//!   at cooperative checkpoints; an unarmed handle costs one relaxed
//!   atomic load.
//! * [`contain`] — a `catch_unwind` boundary that converts any residual
//!   panic into a typed [`ContainedPanic`] carrying the name of the
//!   pipeline stage that was active when the panic fired (tracked with
//!   [`enter_stage`]).
//! * [`chaos`] — feature-gated fault injection ([`failpoint`] sites)
//!   that lets the test suite prove the two mechanisms above recover
//!   from stage panics, artificial slowness, and allocation refusal.
//!
//! ```
//! use qutes_supervisor::{Interrupt, StopReason};
//! use std::time::Duration;
//!
//! let intr = Interrupt::with_deadline(Duration::from_millis(5));
//! // ... some time later, a cooperative checkpoint notices:
//! std::thread::sleep(Duration::from_millis(10));
//! assert!(matches!(intr.check(), Err(StopReason::DeadlineExceeded { .. })));
//! ```

pub mod chaos;
mod contain;
mod interrupt;
mod stage;

pub use chaos::failpoint;
pub use contain::{contain, ContainedPanic};
pub use interrupt::{Interrupt, StopReason};
pub use stage::{current_stage, enter_stage, StageGuard};
