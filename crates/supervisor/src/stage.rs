//! Thread-local pipeline-stage tracking.
//!
//! Each pipeline layer brackets its work with [`enter_stage`]; when a
//! panic is contained by [`crate::contain`], the deepest stage that was
//! active at panic time names the culprit in the typed error.

use std::cell::RefCell;

thread_local! {
    static STAGE: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`enter_stage`]; pops the stage on drop.
///
/// During a panic unwind the pop is skipped so the stage stack still
/// names the deepest active stage when the panic is caught.
pub struct StageGuard {
    _priv: (),
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return;
        }
        STAGE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Pushes `name` onto the thread's stage stack for the guard's lifetime.
pub fn enter_stage(name: &'static str) -> StageGuard {
    STAGE.with(|s| s.borrow_mut().push(name));
    StageGuard { _priv: () }
}

/// The innermost active stage, or `"unknown"` outside any stage.
pub fn current_stage() -> &'static str {
    STAGE.with(|s| s.borrow().last().copied().unwrap_or("unknown"))
}

/// Clears the thread's stage stack. Called by [`crate::contain`] after
/// capturing a panic, since the unwound guards deliberately leave their
/// entries in place (see [`StageGuard`]).
pub(crate) fn reset_stages() {
    STAGE.with(|s| s.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_nest_and_unwind() {
        assert_eq!(current_stage(), "unknown");
        {
            let _outer = enter_stage("parse");
            assert_eq!(current_stage(), "parse");
            {
                let _inner = enter_stage("execute");
                assert_eq!(current_stage(), "execute");
            }
            assert_eq!(current_stage(), "parse");
        }
        assert_eq!(current_stage(), "unknown");
    }

    #[test]
    fn panicking_drop_preserves_stage() {
        let caught = std::panic::catch_unwind(|| {
            let _g = enter_stage("doomed");
            // The guard drops during unwind but must not pop.
            #[allow(clippy::panic)]
            {
                panic!("boom");
            }
        });
        assert!(caught.is_err());
        assert_eq!(current_stage(), "doomed");
        // Clean up the thread-local for other tests on this thread.
        STAGE.with(|s| s.borrow_mut().clear());
    }
}
