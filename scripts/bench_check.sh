#!/usr/bin/env bash
# Bench regression gate (see docs/performance.md).
#
# Compares freshly generated bench artifacts (crates/bench/BENCH_*.json,
# written by `cargo bench -p qutes-bench -- --test`) against the
# committed baselines in bench/baselines/.
#
# Deterministic facts FAIL on any mismatch:
#   * the set of benchmark names per group,
#   * counters in the attached obs snapshot that are machine-independent
#     (gate.*, opt.*, sim.*, noise.*, backend.*, shots.*, and kernel.*
#     except the machine-dependent kernel.dispatch.* split).
#
# Timing facts (timer mean_ns in the obs snapshot) only WARN when they
# drift more than 25% in either direction — CI runners are too noisy to
# gate on wall time, but the drift is worth a line in the log.
#
# To refresh the baselines after an intentional change:
#   cargo bench -p qutes-bench -- --test
#   cp crates/bench/BENCH_*.json bench/baselines/
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'PY'
import glob
import json
import os
import re
import sys

BASELINE_DIR = "bench/baselines"
FRESH_DIR = "crates/bench"
# Deterministic counters: gate mix, optimizer decisions, simulator and
# noise-engine event counts, backend dispatch decisions, shot-pool
# shape (benches pin their thread counts, so shots.parallel.* is
# machine-independent), translation-validation tallies (segment domain
# counts, escalations, verdicts — all decided by the circuit, not the
# machine), and kernel invocation counts. The kernel.dispatch.*
# serial/parallel split depends on the runner's core count, so it is
# excluded.
COUNTER_RE = re.compile(r"^(gate|opt|sim|noise|backend|shots|verify)\.|^kernel\.(?!dispatch\.)")
DRIFT_RATIO = 1.25

failures = []
warnings = []

baselines = sorted(glob.glob(os.path.join(BASELINE_DIR, "BENCH_*.json")))
fresh_all = sorted(glob.glob(os.path.join(FRESH_DIR, "BENCH_*.json")))
if not baselines:
    failures.append(f"no baselines found under {BASELINE_DIR}/")
if not fresh_all:
    failures.append(
        f"no fresh artifacts under {FRESH_DIR}/ — "
        "run `cargo bench -p qutes-bench -- --test` first"
    )

base_names = {os.path.basename(p) for p in baselines}
fresh_names = {os.path.basename(p) for p in fresh_all}
for missing in sorted(base_names - fresh_names):
    failures.append(f"{missing}: baseline exists but the bench no longer emits it")
for extra in sorted(fresh_names - base_names):
    failures.append(
        f"{extra}: new bench artifact without a committed baseline "
        f"(cp {FRESH_DIR}/{extra} {BASELINE_DIR}/)"
    )

def load(path):
    with open(path) as f:
        return json.load(f)

def counters(doc):
    obs = doc.get("obs") or {}
    return {
        k: v
        for k, v in (obs.get("counters") or {}).items()
        if COUNTER_RE.search(k)
    }

def timers(doc):
    obs = doc.get("obs") or {}
    return obs.get("timers") or {}

for name in sorted(base_names & fresh_names):
    base = load(os.path.join(BASELINE_DIR, name))
    fresh = load(os.path.join(FRESH_DIR, name))

    bset = {b["name"] for b in base.get("benchmarks", [])}
    fset = {b["name"] for b in fresh.get("benchmarks", [])}
    for gone in sorted(bset - fset):
        failures.append(f"{name}: benchmark disappeared: {gone}")
    for new in sorted(fset - bset):
        failures.append(f"{name}: benchmark appeared without baseline refresh: {new}")

    bc, fc = counters(base), counters(fresh)
    for key in sorted(bc.keys() | fc.keys()):
        if bc.get(key) != fc.get(key):
            failures.append(
                f"{name}: counter {key} regressed: "
                f"baseline {bc.get(key)} vs fresh {fc.get(key)}"
            )

    bt, ft = timers(base), timers(fresh)
    for key in sorted(bt.keys() & ft.keys()):
        bm, fm = bt[key].get("mean_ns"), ft[key].get("mean_ns")
        if not bm or not fm:
            continue
        ratio = fm / bm
        if ratio > DRIFT_RATIO or ratio < 1.0 / DRIFT_RATIO:
            warnings.append(
                f"{name}: timer {key} drifted {ratio:.2f}x "
                f"(baseline mean {bm}ns, fresh {fm}ns)"
            )

for w in warnings:
    print(f"warning: {w}")
if failures:
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    print(f"\n{len(failures)} bench regression(s).", file=sys.stderr)
    sys.exit(1)
print(f"bench_check: {len(base_names & fresh_names)} artifact(s) match baselines"
      f" ({len(warnings)} timing drift warning(s)).")
PY
