//! Vendored, dependency-free drop-in for the subset of the `rand` 0.9 API
//! this workspace uses: [`Rng`] (`random`, `random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The workspace builds in hermetic environments with no crates-io access,
//! so external dependencies are replaced by in-repo path crates. The
//! generator here is xoshiro256** seeded through SplitMix64 — fast, high
//! quality for simulation purposes, and fully deterministic from a seed,
//! which is the property the Qutes runtime actually relies on
//! (reproducible measurement outcomes). It is NOT cryptographically
//! secure, exactly like upstream `StdRng` makes no stability promise.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Types samplable uniformly from an RNG's raw 64-bit output (the role of
/// upstream's `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        // Use the top bit: xoshiro's high bits are its best-scrambled.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from (the role of upstream `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range, matching
    /// upstream behaviour.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 * span — irrelevant for simulation.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*}
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

/// The user-facing RNG trait: raw output plus convenience samplers.
pub trait Rng {
    /// The raw generator step.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use crate::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic, `Clone`, and cheap.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use crate::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(5);
        let ones = (0..4000).filter(|_| r.random::<bool>()).count();
        assert!((1700..2300).contains(&ones), "ones={ones}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 20 elements left them sorted");
    }
}
