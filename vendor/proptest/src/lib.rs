//! Vendored, dependency-free drop-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The workspace builds in hermetic environments with no crates-io access,
//! so external dev-dependencies are replaced by in-repo path crates. This
//! implementation keeps the property-testing *semantics* the test suites
//! rely on — random generation from composable [`strategy::Strategy`]
//! values, deterministic per-test seeding, rejection via `prop_assume!`,
//! and failure reporting via `prop_assert*!` — but performs no shrinking:
//! a failing case reports its message directly.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration, RNG, and case outcomes.

    /// Per-block configuration, selected with
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Outcome of a single generated case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected (`prop_assume!` failed / filter miss);
        /// it does not count toward the case budget.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies. Each
    /// test derives its stream from its own name, so runs are stable
    /// across processes and machines.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a) so every test has a distinct
        /// but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core (`generate`) plus `Self: Sized` combinators, so
    /// strategies can be type-erased into [`BoxedStrategy`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keeps only values passing `pred`, retrying on misses.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Maps through `f`, retrying whenever `f` returns `None`.
        fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }

        /// Builds a recursive strategy: `self` generates leaves and `f`
        /// lifts an inner strategy into a branch, nested `depth` levels.
        /// (`_desired_size` / `_expected_branch` accepted for upstream
        /// signature compatibility; depth alone bounds recursion here.)
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = f(current).boxed();
                // Interior levels prefer branching 3:1 so trees actually
                // recurse; the leaf keeps generation finite.
                current = Union::weighted(vec![(1, leaf.clone()), (3, branch)]).boxed();
            }
            current
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    const FILTER_RETRIES: usize = 10_000;

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected every candidate", self.whence)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F, U> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map '{}' rejected every candidate", self.whence)
        }
    }

    /// Uniform or weighted choice among boxed alternatives (backs
    /// `prop_oneof!` and `prop_recursive`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Equal-weight union; panics on an empty list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            Self::weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        /// Weighted union; panics if empty or all-zero-weight.
        pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight: u64 = options.iter().map(|&(w, _)| w as u64).sum();
            assert!(total_weight > 0, "Union needs at least one weighted option");
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total_weight;
            for (w, s) in &self.options {
                let w = *w as u64;
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed over total")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot generate from empty range {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*}
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 range");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    /// String-literal strategies: the literal is a regex-subset pattern
    /// (char classes with `{m,n}` / `*` / `+`, and `\PC`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident $idx:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*}
    }
    impl_tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }

    /// Full-range strategy for primitive types (backs [`crate::arbitrary::any`]).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*}
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite, broadly ranged values (no NaN/inf surprises).
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    impl Strategy for Any<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800 - 1) as u32 + 1).unwrap_or('a')
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns.
        type Strategy: crate::strategy::Strategy<Value = Self>;
        /// Builds that strategy.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(PhantomData)
                }
            }
        )*}
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, char);

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specifications accepted by [`vec()`].
    pub trait IntoSizeRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below(self.max - self.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some(inner)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling from fixed collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A random subsequence of `items` of exactly `size` elements, in
    /// their original relative order.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: usize) -> Subsequence<T> {
        assert!(size <= items.len(), "subsequence larger than source");
        Subsequence { items, size }
    }

    /// See [`subsequence`].
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        size: usize,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            // Choose `size` distinct indices by partial Fisher–Yates,
            // then restore source order.
            let mut idx: Vec<usize> = (0..self.items.len()).collect();
            for i in 0..self.size {
                let j = i + rng.below(idx.len() - i);
                idx.swap(i, j);
            }
            let mut chosen = idx[..self.size].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }
}

mod string {
    //! Tiny regex-subset string generator for string-literal strategies.
    //!
    //! Supported shapes (everything the workspace's tests use):
    //! * `[class]` with ranges (`a-z`, ` -~`), literals, and `\n`/`\t`/
    //!   `\r`/`\\`/`\]`/`\-` escapes;
    //! * quantifiers `{m,n}`, `{m}`, `*` (0–32), `+` (1–32) after a class;
    //! * `\PC` — "not control" — any printable char, ASCII or not;
    //! * concatenations of the above; bare literal characters stand for
    //!   themselves.

    use crate::test_runner::TestRng;

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (pool, next) = parse_atom(&chars, i, pattern);
            let (lo, hi, next) = parse_quantifier(&chars, next, pattern);
            let reps = lo + rng.below(hi - lo + 1);
            for _ in 0..reps {
                match &pool {
                    Pool::Chars(cs) => out.push(cs[rng.below(cs.len())]),
                    Pool::Printable => out.push(printable(rng)),
                }
            }
            i = next;
        }
        out
    }

    enum Pool {
        Chars(Vec<char>),
        Printable,
    }

    fn printable(rng: &mut TestRng) -> char {
        // Mix ASCII with a sprinkling of multibyte codepoints so lexer
        // totality is exercised on non-ASCII input too.
        const EXOTIC: &[char] = &['é', 'λ', 'Ω', '中', '🙂', '±', 'ß', '€', '𝛼', '„'];
        match rng.below(4) {
            0 => EXOTIC[rng.below(EXOTIC.len())],
            _ => (b' ' + rng.below(95) as u8) as char,
        }
    }

    fn parse_atom(chars: &[char], i: usize, pattern: &str) -> (Pool, usize) {
        match chars[i] {
            '[' => {
                let mut pool = Vec::new();
                let mut j = i + 1;
                while j < chars.len() && chars[j] != ']' {
                    let c = if chars[j] == '\\' {
                        j += 1;
                        match chars.get(j) {
                            Some('n') => '\n',
                            Some('t') => '\t',
                            Some('r') => '\r',
                            Some(&other) => other,
                            None => panic!("dangling escape in pattern '{pattern}'"),
                        }
                    } else {
                        chars[j]
                    };
                    // Range `c-d` (a '-' that is neither first nor last).
                    if chars.get(j + 1) == Some(&'-') && j + 2 < chars.len() && chars[j + 2] != ']'
                    {
                        let hi = chars[j + 2];
                        for code in c as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(code) {
                                pool.push(ch);
                            }
                        }
                        j += 3;
                    } else {
                        pool.push(c);
                        j += 1;
                    }
                }
                assert!(j < chars.len(), "unclosed '[' in pattern '{pattern}'");
                assert!(!pool.is_empty(), "empty char class in pattern '{pattern}'");
                (Pool::Chars(pool), j + 1)
            }
            '\\' => match chars.get(i + 1) {
                // \PC — "not a control character".
                Some('P') if chars.get(i + 2) == Some(&'C') => (Pool::Printable, i + 3),
                Some('n') => (Pool::Chars(vec!['\n']), i + 2),
                Some('t') => (Pool::Chars(vec!['\t']), i + 2),
                Some(&other) => (Pool::Chars(vec![other]), i + 2),
                None => panic!("dangling escape in pattern '{pattern}'"),
            },
            other => (Pool::Chars(vec![other]), i + 1),
        }
    }

    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('*') => (0, 32, i + 1),
            Some('+') => (1, 32, i + 1),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern '{pattern}'"));
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad quantifier"),
                        b.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            }
            _ => (1, 1, i),
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The crate root, re-exported under the conventional `prop` alias
    /// (`prop::collection::vec`, `prop::option::of`, …).
    pub use crate as prop;
}

/// Uniform choice among strategies (weighted arms are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts within a property body; failure fails the case (no panic
/// mid-generation, so the harness can report the message cleanly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), lhs, rhs
        );
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat in $arg_strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                ::core::module_path!(), "::", stringify!($name)
            ));
            let cases = config.cases as usize;
            let mut passed = 0usize;
            let mut attempts = 0usize;
            while passed < cases {
                attempts += 1;
                assert!(
                    attempts <= cases * 100 + 1000,
                    "proptest '{}': too many rejected cases ({} passed of {})",
                    stringify!($name), passed, cases
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $arg_pat =
                                $crate::strategy::Strategy::generate(&($arg_strategy), &mut rng);
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' failed: {}", stringify!($name), msg);
                    }
                }
            }
        }
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        let s = (0usize..10, -5i64..5, -1.0..1.0f64);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 10);
            assert!((-5..5).contains(&b));
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..100 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = "[01]{1,6}".generate(&mut rng);
            assert!(t.chars().all(|c| c == '0' || c == '1'));

            let p = "[ -~]{0,20}".generate(&mut rng);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)), "{p:?}");

            let any = "\\PC*".generate(&mut rng);
            assert!(any.chars().count() <= 32);
        }
    }

    #[test]
    fn oneof_and_filter_map_work() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![
            (0usize..4, 0usize..4).prop_filter_map("distinct", |(a, b)| (a != b).then_some((a, b))),
            Just((9usize, 9usize)),
        ];
        let mut saw_just = false;
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            if (a, b) == (9, 9) {
                saw_just = true;
            } else {
                assert_ne!(a, b);
            }
        }
        assert!(saw_just);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_name("recursive");
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth > 1, "recursion never branched");
        assert!(max_depth <= 4, "depth bound violated: {max_depth}");
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = TestRng::from_name("subseq");
        let s = prop::sample::subsequence(vec![0usize, 1, 2, 3], 3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert_eq!(v.len(), 3);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{v:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in 0u64..100, mut v in prop::collection::vec(0u64..10, 1..4)) {
            v.sort_unstable();
            prop_assume!(x < 99);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
