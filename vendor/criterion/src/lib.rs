//! Vendored, dependency-free drop-in for the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The workspace builds in hermetic environments with no crates-io
//! access, so external dev-dependencies are replaced by in-repo path
//! crates. This harness keeps the bench *structure* (groups, ids,
//! parameterised inputs) and reports median wall-clock ns/iter from a
//! few timed batches — adequate for relative comparisons in CI logs,
//! with none of upstream's statistical machinery.
//!
//! Two CI-oriented extras over upstream's CLI surface:
//!
//! * `--test` (as in `cargo bench -- --test`) switches to **smoke mode**:
//!   every benchmark body runs exactly once, untimed, so CI can verify
//!   the benches still execute without paying for measurement windows.
//! * Each finished group writes its results to `BENCH_<group>.json` in
//!   the current directory (median/min/max ns per benchmark, or a bare
//!   `smoke` marker under `--test`), giving CI a machine-readable
//!   artifact to upload.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier so the optimizer cannot elide benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// True when the harness was invoked as `cargo bench -- --test`: run
/// each benchmark once to prove it executes, skipping measurement.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// A `group/function/parameter` label for one benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter display, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    samples: Vec<f64>,
    target_batches: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    smoke: bool,
}

impl Bencher {
    /// Times `routine`, first warming up, then taking timed batches
    /// until the measurement window is filled. In smoke mode the routine
    /// runs exactly once, untimed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Warm-up: also estimates per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Spread the measurement window across the requested batches.
        let batches = self.target_batches.clamp(2, 100) as f64;
        let batch = ((self.measurement_time.as_secs_f64() / batches / per_iter.max(1e-9)) as u64)
            .clamp(1, 1_000_000);
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() / batch as f64 * 1e9);
        }
    }
}

/// One finished benchmark's summary, collected for the group's JSON
/// artifact.
struct BenchResult {
    label: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    smoke: bool,
}

/// A named collection of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
    attachments: Vec<(String, String)>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches to spread the measurement window over.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benches a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchId>, mut f: F) {
        let label = id.into().0;
        let smoke = smoke_mode();
        let mut b = Bencher {
            samples: Vec::new(),
            target_batches: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            smoke,
        };
        f(&mut b);
        self.results
            .push(report(&self.name, &label, &mut b.samples, smoke));
    }

    /// Benches a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Attaches a pre-rendered JSON value under `key` as an extra
    /// top-level field of the group's `BENCH_<group>.json` artifact
    /// (e.g. an observability snapshot giving stage breakdowns).
    ///
    /// `raw_json` must already be valid JSON — it is embedded verbatim.
    /// Attaching the same key twice keeps the last value.
    pub fn attach_json(&mut self, key: impl Into<String>, raw_json: impl Into<String>) {
        let key = key.into();
        self.attachments.retain(|(k, _)| *k != key);
        self.attachments.push((key, raw_json.into()));
    }

    /// Ends the group and writes its `BENCH_<group>.json` artifact.
    pub fn finish(self) {
        write_artifact(&self.name, &self.results, &self.attachments);
    }
}

/// Either a plain string label or a [`BenchmarkId`].
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.label)
    }
}

fn report(group: &str, label: &str, samples: &mut [f64], smoke: bool) -> BenchResult {
    if smoke {
        println!("{group}/{label}: smoke ok (1 iteration, untimed)");
        return BenchResult {
            label: label.to_string(),
            median_ns: 0.0,
            min_ns: 0.0,
            max_ns: 0.0,
            smoke: true,
        };
    }
    if samples.is_empty() {
        println!("{group}/{label}: no samples");
        return BenchResult {
            label: label.to_string(),
            median_ns: 0.0,
            min_ns: 0.0,
            max_ns: 0.0,
            smoke: false,
        };
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!("{group}/{label}: median {median:.1} ns/iter (min {lo:.1}, max {hi:.1})");
    BenchResult {
        label: label.to_string(),
        median_ns: median,
        min_ns: lo,
        max_ns: hi,
        smoke: false,
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// File-name-safe form of a group name.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes `BENCH_<group>.json` into the current directory. Failures are
/// reported to stderr but never abort the bench run.
fn write_artifact(group: &str, results: &[BenchResult], attachments: &[(String, String)]) {
    let mut body = String::new();
    let _ = write!(
        body,
        "{{\n  \"group\": \"{}\",\n  \"mode\": \"{}\",\n  \"benchmarks\": [",
        json_escape(group),
        if smoke_mode() { "smoke" } else { "measure" },
    );
    for (i, r) in results.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        if r.smoke {
            let _ = write!(
                body,
                "{sep}\n    {{\"name\": \"{}\", \"smoke\": true}}",
                json_escape(&r.label)
            );
        } else {
            let _ = write!(
                body,
                "{sep}\n    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}}}",
                json_escape(&r.label),
                r.median_ns,
                r.min_ns,
                r.max_ns
            );
        }
    }
    body.push_str("\n  ]");
    for (key, raw) in attachments {
        // Indent the attached value so nested objects stay readable.
        let indented = raw.trim_end().replace('\n', "\n  ");
        let _ = write!(body, ",\n  \"{}\": {}", json_escape(key), indented);
    }
    body.push_str("\n}\n");
    let path = format!("BENCH_{}.json", sanitize(group));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: cannot write {path}: {e}");
    }
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A fresh harness with default timing windows.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            results: Vec::new(),
            attachments: Vec::new(),
        }
    }

    /// Benches a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(label, f);
        g.finish();
    }
}

/// Declares a group-runner function invoking each bench fn in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("t");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::new();
        trivial(&mut c);
        criterion_group!(benches, trivial);
        benches();
        // The group artifact is written next to the test's cwd.
        let artifact = std::path::Path::new("BENCH_t.json");
        assert!(artifact.exists(), "expected BENCH_t.json artifact");
        let body = std::fs::read_to_string(artifact).unwrap();
        assert!(body.contains("\"group\": \"t\""), "{body}");
        assert!(body.contains("\"name\": \"noop\""), "{body}");
        assert!(body.contains("\"name\": \"sq/7\""), "{body}");
        let _ = std::fs::remove_file(artifact);
    }

    #[test]
    fn attach_json_extends_artifact() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("t_attach");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.attach_json("stages", "{\"ignored\": true}");
        g.attach_json("stages", "{\n  \"lex_ns\": 12\n}");
        g.finish();
        let artifact = std::path::Path::new("BENCH_t_attach.json");
        let body = std::fs::read_to_string(artifact).unwrap();
        assert!(body.contains("\"stages\": {"), "{body}");
        assert!(body.contains("\"lex_ns\": 12"), "{body}");
        assert!(!body.contains("ignored"), "duplicate key kept: {body}");
        assert_eq!(body.matches('{').count(), body.matches('}').count());
        let _ = std::fs::remove_file(artifact);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
        assert_eq!(sanitize("gro up/1"), "gro_up_1");
    }
}
