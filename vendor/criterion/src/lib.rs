//! Vendored, dependency-free drop-in for the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The workspace builds in hermetic environments with no crates-io
//! access, so external dev-dependencies are replaced by in-repo path
//! crates. This harness keeps the bench *structure* (groups, ids,
//! parameterised inputs) and reports median wall-clock ns/iter from a
//! few timed batches — adequate for relative comparisons in CI logs,
//! with none of upstream's statistical machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier so the optimizer cannot elide benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A `group/function/parameter` label for one benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter display, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    samples: Vec<f64>,
    target_batches: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then taking timed batches
    /// until the measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Spread the measurement window across the requested batches.
        let batches = self.target_batches.clamp(2, 100) as f64;
        let batch = ((self.measurement_time.as_secs_f64() / batches / per_iter.max(1e-9)) as u64)
            .clamp(1, 1_000_000);
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() / batch as f64 * 1e9);
        }
    }
}

/// A named collection of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches to spread the measurement window over.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benches a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchId>, mut f: F) {
        let label = id.into().0;
        let mut b = Bencher {
            samples: Vec::new(),
            target_batches: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        report(&self.name, &label, &mut b.samples);
    }

    /// Benches a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (upstream finalizes reports here; we report as
    /// each benchmark completes).
    pub fn finish(self) {}
}

/// Either a plain string label or a [`BenchmarkId`].
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.label)
    }
}

fn report(group: &str, label: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{group}/{label}: no samples");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!("{group}/{label}: median {median:.1} ns/iter (min {lo:.1}, max {hi:.1})");
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A fresh harness with default timing windows.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }

    /// Benches a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(label, f);
        g.finish();
    }
}

/// Declares a group-runner function invoking each bench fn in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("t");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::new();
        trivial(&mut c);
        criterion_group!(benches, trivial);
        benches();
    }
}
